use crate::admission::{AdmissionKind, AdmissionState, CountMinSketch};
use crate::clock::{ClockRing, MAX_CLOCK};
use aggcache_chunks::hash::{PackedChunkKey, PackedMap, PackedSet};
use aggcache_chunks::{ChunkData, ChunkKey};
use aggcache_obs::{Event, Tier, Tracer};
use std::sync::Arc;

/// Where a cached chunk came from — the paper's two benefit classes (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Fetched from the backend database (includes pre-loaded chunks).
    /// Expensive to reproduce: connection + query + transfer.
    Backend,
    /// Computed by aggregating other cached chunks. Cheap to reproduce as
    /// long as its inputs stay cached.
    Computed,
    /// Promoted back from the disk spill tier. Cheapest of all to
    /// reproduce — its bytes are still on disk — so under the paper's
    /// tiered policy it is the first to fall (backend > computed >
    /// spilled). Never present unless a spill tier is attached.
    Spilled,
}

/// A cached chunk with its replacement metadata.
#[derive(Debug)]
pub struct CachedChunk {
    /// The chunk's cells.
    pub data: ChunkData,
    /// Benefit class.
    pub origin: Origin,
    /// The benefit (cost of recomputation, in virtual milliseconds).
    pub benefit: f64,
    /// Accounting size in bytes.
    pub bytes: usize,
}

/// Replacement policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Plain LRU approximated by CLOCK (second chance, no benefit
    /// weighting) — a baseline below the paper's policies.
    Lru,
    /// Single benefit-weighted CLOCK over all chunks (\[DRSN98\]).
    Benefit,
    /// The paper's two-level policy: backend chunks outrank computed
    /// chunks; supports group boosting.
    TwoLevel,
}

/// The outcome of an insert.
#[derive(Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Whether the chunk was admitted. A computed chunk is refused when
    /// admitting it would require evicting backend chunks (two-level
    /// policy), or when the chunk alone exceeds the budget.
    pub admitted: bool,
    /// Chunks evicted to make room, in eviction order. The caller (the
    /// cache manager) must propagate these to the virtual-count tables.
    pub evicted: Vec<ChunkKey>,
}

enum Rings {
    Lru(ClockRing),
    Benefit(ClockRing),
    TwoLevel {
        backend: ClockRing,
        computed: ClockRing,
        /// Third replacement level (the spill tier's promotions): victims
        /// are drawn here before any computed or backend chunk. Empty —
        /// and therefore behaviourally invisible — unless a spill tier
        /// feeds `Origin::Spilled` inserts.
        spilled: ClockRing,
    },
}

/// A byte-budgeted chunk cache.
///
/// Insertions that exceed the budget trigger policy-driven eviction; the
/// evicted keys are reported to the caller so that virtual counts can be
/// maintained. Chunks can be *pinned* while they serve as inputs to an
/// in-flight aggregation, protecting a computation plan's leaves from being
/// evicted by its own outputs.
pub struct ChunkCache {
    budget: usize,
    used: usize,
    /// Resident chunks, keyed by packed chunk key ([`ChunkKey::pack`]) so
    /// the hot probe path hashes one `u64` through the FxHash-style hasher.
    map: PackedMap<CachedChunk>,
    rings: Rings,
    pinned: PackedSet,
    /// Mean benefit of the *resident* chunks, used to normalize clock
    /// seeds. Contributions are added on admission and subtracted on
    /// removal, so evicted and replaced entries do not pollute the mean.
    benefit_sum: f64,
    benefit_count: u64,
    hits: u64,
    misses: u64,
    /// Admission-policy selector (kept alongside the state so callers can
    /// read back the configured kind, sketch geometry included).
    admission_kind: AdmissionKind,
    /// Admission-policy state; a no-op under the default
    /// [`AdmissionKind::BenefitMean`].
    admission: AdmissionState,
    /// Inserts refused by the admission policy (not by feasibility).
    admission_rejects: u64,
    /// When `true`, policy victims evicted by [`ChunkCache::insert`] are
    /// retained (with their data) in `evicted_buf` for the owner to drain
    /// — the spill tier's demotion hook. Off by default: eviction then
    /// drops entries immediately, exactly the historical behaviour.
    capture_evicted: bool,
    /// Victims captured since the last [`ChunkCache::drain_evicted`], in
    /// eviction order (aligned with [`InsertOutcome::evicted`]).
    evicted_buf: Vec<(ChunkKey, CachedChunk)>,
    /// Optional event sink; `None` keeps every emission site down to one
    /// branch.
    tracer: Option<Arc<dyn Tracer>>,
}

fn tier_of(origin: Origin) -> Tier {
    match origin {
        Origin::Backend => Tier::Fetched,
        Origin::Computed => Tier::Computed,
        Origin::Spilled => Tier::Spilled,
    }
}

impl ChunkCache {
    /// Creates a cache with the given byte budget and policy, using the
    /// default [`AdmissionKind::BenefitMean`] admission (the historical
    /// admit-everything-feasible behaviour).
    pub fn new(budget_bytes: usize, policy: PolicyKind) -> Self {
        Self::with_admission(budget_bytes, policy, AdmissionKind::default())
    }

    /// Creates a cache with an explicit admission policy.
    pub fn with_admission(
        budget_bytes: usize,
        policy: PolicyKind,
        admission: AdmissionKind,
    ) -> Self {
        let rings = match policy {
            PolicyKind::Lru => Rings::Lru(ClockRing::new()),
            PolicyKind::Benefit => Rings::Benefit(ClockRing::new()),
            PolicyKind::TwoLevel => Rings::TwoLevel {
                backend: ClockRing::new(),
                computed: ClockRing::new(),
                spilled: ClockRing::new(),
            },
        };
        Self {
            budget: budget_bytes,
            used: 0,
            map: PackedMap::default(),
            rings,
            pinned: PackedSet::default(),
            benefit_sum: 0.0,
            benefit_count: 0,
            hits: 0,
            misses: 0,
            admission_kind: admission,
            admission: AdmissionState::new(admission),
            admission_rejects: 0,
            capture_evicted: false,
            evicted_buf: Vec::new(),
            tracer: None,
        }
    }

    /// Installs (or removes) the trace event sink.
    pub fn set_tracer(&mut self, tracer: Option<Arc<dyn Tracer>>) {
        self.tracer = tracer;
    }

    /// The policy in use.
    pub fn policy(&self) -> PolicyKind {
        match self.rings {
            Rings::Lru(_) => PolicyKind::Lru,
            Rings::Benefit(_) => PolicyKind::Benefit,
            Rings::TwoLevel { .. } => PolicyKind::TwoLevel,
        }
    }

    /// The byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Bytes currently used.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Number of cached chunks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits observed via [`ChunkCache::get`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed via [`ChunkCache::get`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The configured admission policy.
    pub fn admission(&self) -> AdmissionKind {
        self.admission_kind
    }

    /// Inserts refused by the admission policy (feasible inserts turned
    /// away by the frequency or benefit bar — not oversize/pin refusals).
    pub fn admission_rejects(&self) -> u64 {
        self.admission_rejects
    }

    /// The TinyLFU frequency sketch, if that policy is active (tests and
    /// diagnostics).
    pub fn admission_sketch(&self) -> Option<&CountMinSketch> {
        self.admission.sketch()
    }

    fn normalized(&self, benefit: f64) -> f64 {
        if self.benefit_count == 0 || self.benefit_sum <= 0.0 {
            return 1.0;
        }
        let mean = self.benefit_sum / self.benefit_count as f64;
        (benefit / mean).clamp(0.25, MAX_CLOCK)
    }

    /// Looks up a chunk, refreshing its clock on a hit. Every lookup (hit
    /// or miss) is a reference for the admission frequency sketch: repeated
    /// misses on a hot chunk build up the frequency that later wins it
    /// admission.
    pub fn get(&mut self, key: &ChunkKey) -> Option<&CachedChunk> {
        let packed = key.pack();
        self.admission.record(packed);
        if let Some(entry) = self.map.get(&packed) {
            self.hits += 1;
            let clock = self.normalized(entry.benefit);
            match &mut self.rings {
                // LRU: a use sets the reference weight above the insert
                // seed (0.5), so recently-used entries survive the sweep.
                Rings::Lru(r) => r.touch(packed, 1.0),
                Rings::Benefit(r) => r.touch(packed, clock),
                Rings::TwoLevel {
                    backend,
                    computed,
                    spilled,
                } => match entry.origin {
                    Origin::Backend => backend.touch(packed, clock),
                    Origin::Computed => computed.touch(packed, clock),
                    Origin::Spilled => spilled.touch(packed, clock),
                },
            }
            self.map.get(&packed)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Looks up a chunk without touching replacement state.
    pub fn peek(&self, key: &ChunkKey) -> Option<&CachedChunk> {
        self.map.get(&key.pack())
    }

    /// Whether `key` is cached (no replacement side effects).
    pub fn contains(&self, key: &ChunkKey) -> bool {
        self.map.contains_key(&key.pack())
    }

    /// Pins a chunk: it cannot be chosen as an eviction victim until
    /// unpinned.
    pub fn pin(&mut self, key: ChunkKey) {
        self.pinned.insert(key.pack());
    }

    /// Unpins a chunk.
    pub fn unpin(&mut self, key: &ChunkKey) {
        self.pinned.remove(&key.pack());
    }

    /// Boosts the clocks of a group of chunks by (normalized) `benefit` —
    /// the two-level policy's reward for groups that computed an aggregate
    /// (§6.3). A no-op under the plain benefit policy. The `GroupBoost`
    /// event reports only the chunks actually present in a ring, not every
    /// key the caller passed.
    pub fn boost_group<'a>(&mut self, keys: impl Iterator<Item = &'a ChunkKey>, benefit: f64) {
        let amount = self.normalized(benefit);
        if let Rings::TwoLevel {
            backend,
            computed,
            spilled,
        } = &mut self.rings
        {
            let mut chunks = 0u64;
            for key in keys {
                let packed = key.pack();
                let present = backend.boost(packed, amount)
                    | computed.boost(packed, amount)
                    | spilled.boost(packed, amount);
                chunks += u64::from(present);
            }
            if let Some(tracer) = &self.tracer {
                tracer.emit(&Event::GroupBoost { chunks, amount });
            }
        }
    }

    /// Inserts (or replaces) a chunk, evicting per policy to fit the
    /// budget. Returns the admission decision and the evicted keys.
    ///
    /// A *refused* replace leaves the previously cached entry untouched:
    /// the oversize and feasibility checks run before the old entry is
    /// dropped, so refusal never silently destroys resident data. The old
    /// entry is removed only once admission is certain, and is reported to
    /// the caller via the `admitted` flag (it is not in `evicted`).
    pub fn insert(
        &mut self,
        key: ChunkKey,
        data: ChunkData,
        origin: Origin,
        benefit: f64,
    ) -> InsertOutcome {
        let packed = key.pack();
        let bytes = data.accounting_bytes();
        let mut evicted = Vec::new();
        // An insert attempt is a reference too: a chunk that keeps getting
        // recomputed or refetched accrues frequency even while refused.
        self.admission.record(packed);

        if bytes > self.budget {
            self.trace_insert(key, origin, bytes, false);
            return InsertOutcome {
                admitted: false,
                evicted,
            };
        }

        // Feasibility precheck: can enough unpinned bytes be freed from the
        // victim classes this origin may evict? The entry being replaced
        // counts as free (it is dropped iff the insert is admitted), so it
        // is excluded from the freeable scan to avoid double counting.
        let old_bytes = self.map.get(&packed).map_or(0, |e| e.bytes);
        let need = (self.used - old_bytes + bytes).saturating_sub(self.budget);
        if need > 0 && self.freeable_bytes(origin, packed) < need {
            self.trace_insert(key, origin, bytes, false);
            return InsertOutcome {
                admitted: false,
                evicted,
            };
        }

        // Admission gate: only inserts that would evict are questioned.
        // While the cache has room every policy admits everything — an
        // empty slot protects nothing.
        if need > 0 && !self.admission_allows(packed, origin, benefit) {
            self.admission_rejects += 1;
            self.trace_insert(key, origin, bytes, false);
            return InsertOutcome {
                admitted: false,
                evicted,
            };
        }

        // Admission is now guaranteed: drop the entry being replaced.
        let replaced = self.remove_internal(packed);

        while self.used + bytes > self.budget {
            let victim = self.find_victim(origin);
            match victim {
                Some(v) => {
                    self.trace_evict(v);
                    let entry = self.take_internal(v);
                    let victim_key = ChunkKey::unpack(v);
                    if self.capture_evicted {
                        if let Some(entry) = entry {
                            // Demotion hook: keep the victim's data for the
                            // owner to spill to disk.
                            self.evicted_buf.push((victim_key, entry));
                        }
                    }
                    evicted.push(victim_key);
                }
                None => {
                    // Unreachable given the precheck, but stay safe: refuse
                    // admission rather than over-commit. The replaced entry
                    // (if any) is already gone, so report it as evicted to
                    // keep the caller's count tables consistent.
                    if replaced {
                        evicted.push(key);
                    }
                    self.trace_insert(key, origin, bytes, false);
                    return InsertOutcome {
                        admitted: false,
                        evicted,
                    };
                }
            }
        }

        self.benefit_sum += benefit.max(0.0);
        self.benefit_count += 1;
        let clock = self.normalized(benefit);
        match &mut self.rings {
            Rings::Lru(r) => r.insert(packed, 0.5),
            Rings::Benefit(r) => r.insert(packed, clock),
            Rings::TwoLevel {
                backend,
                computed,
                spilled,
            } => match origin {
                Origin::Backend => backend.insert(packed, clock),
                Origin::Computed => computed.insert(packed, clock),
                Origin::Spilled => spilled.insert(packed, clock),
            },
        }
        self.used += bytes;
        self.map.insert(
            packed,
            CachedChunk {
                data,
                origin,
                benefit,
                bytes,
            },
        );
        self.trace_insert(key, origin, bytes, true);
        InsertOutcome {
            admitted: true,
            evicted,
        }
    }

    fn trace_insert(&self, key: ChunkKey, origin: Origin, bytes: usize, admitted: bool) {
        if let Some(tracer) = &self.tracer {
            tracer.emit(&Event::CacheInsert {
                gb: key.gb.0,
                chunk: key.chunk,
                tier: tier_of(origin),
                bytes: bytes as u64,
                admitted,
            });
        }
    }

    /// Emits the `Evict` event for a policy victim — called before
    /// removal, while the entry and its ring state are still readable.
    fn trace_evict(&self, victim: PackedChunkKey) {
        let Some(tracer) = &self.tracer else {
            return;
        };
        let tier = self
            .map
            .get(&victim)
            .map(|e| tier_of(e.origin))
            .unwrap_or(Tier::Fetched);
        let (clock_round, clock) = match &self.rings {
            Rings::Lru(r) | Rings::Benefit(r) => (r.rounds(), r.clock_of(victim)),
            Rings::TwoLevel {
                backend,
                computed,
                spilled,
            } => match (spilled.clock_of(victim), computed.clock_of(victim)) {
                (Some(c), _) => (spilled.rounds(), Some(c)),
                (None, Some(c)) => (computed.rounds(), Some(c)),
                (None, None) => (backend.rounds(), backend.clock_of(victim)),
            },
        };
        let key = ChunkKey::unpack(victim);
        tracer.emit(&Event::Evict {
            gb: key.gb.0,
            chunk: key.chunk,
            tier,
            clock_round,
            clock: clock.unwrap_or(0.0),
        });
    }

    /// Removes a chunk explicitly; returns whether it was present.
    pub fn remove(&mut self, key: &ChunkKey) -> bool {
        self.remove_internal(key.pack())
    }

    /// Ownership-aware eviction: drains every resident chunk for which
    /// `owned` returns `false`, returning the drained entries as
    /// `(key, data, origin, benefit)` so the caller can hand them off to
    /// their new owner (the cluster tier's key-slice handoff after a ring
    /// membership change).
    ///
    /// Byte accounting, clock rings and the resident benefit mean are
    /// maintained exactly as for [`ChunkCache::remove`]; pins do not
    /// protect entries from an ownership drain (a handoff happens between
    /// queries, never inside one). The drain order is ascending packed key
    /// — deterministic regardless of the cache's insertion history.
    pub fn evict_unowned(
        &mut self,
        mut owned: impl FnMut(ChunkKey) -> bool,
    ) -> Vec<(ChunkKey, ChunkData, Origin, f64)> {
        let mut stale: Vec<PackedChunkKey> = self
            .map
            .keys()
            .copied()
            .filter(|&packed| !owned(ChunkKey::unpack(packed)))
            .collect();
        stale.sort_unstable();
        stale
            .into_iter()
            .filter_map(|packed| {
                self.take_internal(packed).map(|entry| {
                    (
                        ChunkKey::unpack(packed),
                        entry.data,
                        entry.origin,
                        entry.benefit,
                    )
                })
            })
            .collect()
    }

    /// Iterates over the cached keys (arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = ChunkKey> + '_ {
        self.map.keys().map(|&packed| ChunkKey::unpack(packed))
    }

    /// The admission decision for an insert that must evict to fit.
    ///
    /// * Benefit-mean: always yes (the historical behaviour).
    /// * Two-level: backend chunks always enter; a computed chunk enters
    ///   only when its benefit meets the resident mean — cheap
    ///   recomputables must not churn the cache under contention.
    /// * TinyLFU: the candidate's sketch frequency must *exceed* the
    ///   coldest eviction-eligible resident's (same eligibility rule as
    ///   [`ChunkCache::freeable_bytes`]); ties keep the resident.
    fn admission_allows(&self, candidate: PackedChunkKey, origin: Origin, benefit: f64) -> bool {
        match &self.admission {
            AdmissionState::BenefitMean => true,
            AdmissionState::TwoLevel => match origin {
                Origin::Backend => true,
                Origin::Computed => self.normalized(benefit) >= 1.0,
                // A promotion was demanded by a live query and can only
                // displace other spilled chunks (feasibility rule), so the
                // frequency/benefit bar would protect nothing.
                Origin::Spilled => true,
            },
            AdmissionState::TinyLfu(sketch) => {
                let candidate_est = sketch.estimate(candidate);
                let victim_est = self
                    .map
                    .iter()
                    .filter(|(&k, e)| {
                        k != candidate
                            && !self.pinned.contains(&k)
                            && may_evict(self.policy(), origin, e.origin)
                    })
                    .map(|(&k, _)| sketch.estimate(k))
                    .min();
                match victim_est {
                    Some(coldest) => candidate_est > coldest,
                    // No eligible victim at all — leave the refusal to the
                    // feasibility check, which already handled it.
                    None => true,
                }
            }
        }
    }

    fn freeable_bytes(&self, origin: Origin, replacing: PackedChunkKey) -> usize {
        self.map
            .iter()
            .filter(|(&k, e)| {
                k != replacing
                    && !self.pinned.contains(&k)
                    && may_evict(self.policy(), origin, e.origin)
            })
            .map(|(_, e)| e.bytes)
            .sum()
    }

    fn find_victim(&mut self, origin: Origin) -> Option<PackedChunkKey> {
        let pinned = &self.pinned;
        match &mut self.rings {
            Rings::Lru(r) | Rings::Benefit(r) => r.find_victim(|k| pinned.contains(&k)),
            Rings::TwoLevel {
                backend,
                computed,
                spilled,
            } => {
                // Three-level order: spilled chunks (still on disk) fall
                // first, then computed chunks; backend chunks fall only to
                // other backend chunks. An inserting chunk may only claim
                // victims at or below its own level.
                if let Some(v) = spilled.find_victim(|k| pinned.contains(&k)) {
                    return Some(v);
                }
                if origin == Origin::Spilled {
                    return None;
                }
                if let Some(v) = computed.find_victim(|k| pinned.contains(&k)) {
                    return Some(v);
                }
                match origin {
                    Origin::Backend => backend.find_victim(|k| pinned.contains(&k)),
                    _ => None,
                }
            }
        }
    }

    fn remove_internal(&mut self, key: PackedChunkKey) -> bool {
        self.take_internal(key).is_some()
    }

    /// Removes an entry and returns it, maintaining byte accounting, the
    /// resident benefit mean and the clock rings.
    fn take_internal(&mut self, key: PackedChunkKey) -> Option<CachedChunk> {
        let entry = self.map.remove(&key)?;
        self.used -= entry.bytes;
        // Keep the normalization mean over *resident* chunks: retire this
        // entry's contribution. The counter reset clears any accumulated
        // floating-point residue once the cache drains.
        self.benefit_sum -= entry.benefit.max(0.0);
        self.benefit_count = self.benefit_count.saturating_sub(1);
        if self.benefit_count == 0 || self.benefit_sum < 0.0 {
            self.benefit_sum = 0.0;
        }
        match &mut self.rings {
            Rings::Lru(r) | Rings::Benefit(r) => {
                r.remove(key);
            }
            Rings::TwoLevel {
                backend,
                computed,
                spilled,
            } => {
                backend.remove(key);
                computed.remove(key);
                spilled.remove(key);
            }
        }
        Some(entry)
    }

    /// Enables (or disables) eviction capture: while on, policy victims
    /// evicted by [`ChunkCache::insert`] keep their data in an internal
    /// buffer until [`ChunkCache::drain_evicted`] — the spill tier's
    /// demotion hook. Explicit [`ChunkCache::remove`], replaced entries and
    /// ownership drains are *not* captured: only replacement-policy
    /// victims are demotion candidates.
    pub fn set_capture_evicted(&mut self, on: bool) {
        self.capture_evicted = on;
        if !on {
            self.evicted_buf.clear();
        }
    }

    /// Takes the victims captured since the last drain, in eviction order
    /// (each aligned with its [`InsertOutcome::evicted`] report). Empty
    /// unless [`ChunkCache::set_capture_evicted`] is on.
    pub fn drain_evicted(&mut self) -> Vec<(ChunkKey, CachedChunk)> {
        std::mem::take(&mut self.evicted_buf)
    }

    /// Iterates the resident entries in ascending packed-key order — the
    /// deterministic enumeration checkpoints serialize under.
    pub fn entries_sorted(&self) -> Vec<(ChunkKey, &CachedChunk)> {
        let mut keys: Vec<PackedChunkKey> = self.map.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(|packed| {
                (
                    ChunkKey::unpack(packed),
                    self.map.get(&packed).expect("key just enumerated"),
                )
            })
            .collect()
    }
}

/// Whether an insert of `inserting` origin may evict a resident of
/// `victim` origin — the tiered-policy eviction lattice (backend >
/// computed > spilled; non-tiered policies allow everything).
fn may_evict(policy: PolicyKind, inserting: Origin, victim: Origin) -> bool {
    if policy != PolicyKind::TwoLevel {
        return true;
    }
    match inserting {
        Origin::Backend => true,
        Origin::Computed => victim != Origin::Backend,
        Origin::Spilled => victim == Origin::Spilled,
    }
}

impl std::fmt::Debug for ChunkCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkCache")
            .field("policy", &self.policy())
            .field("budget", &self.budget)
            .field("used", &self.used)
            .field("chunks", &self.map.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggcache_schema::GroupById;

    fn chunk(cells: usize) -> ChunkData {
        let mut d = ChunkData::new(1);
        for i in 0..cells {
            d.push(&[i as u32], 1.0);
        }
        d
    }

    fn k(i: u64) -> ChunkKey {
        ChunkKey::new(GroupById(0), i)
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ChunkCache::new(400, PolicyKind::Lru);
        c.insert(k(1), chunk(10), Origin::Backend, 100.0);
        c.insert(k(2), chunk(10), Origin::Backend, 0.1);
        // Touch k1 so k2 is the LRU victim despite benefits being ignored.
        let _ = c.get(&k(1));
        let out = c.insert(k(3), chunk(10), Origin::Backend, 1.0);
        assert!(out.admitted);
        assert_eq!(out.evicted, vec![k(2)]);
        assert_eq!(c.policy(), PolicyKind::Lru);
    }

    #[test]
    fn lru_ignores_benefit() {
        let mut c = ChunkCache::new(400, PolicyKind::Lru);
        c.insert(k(1), chunk(10), Origin::Backend, 1e9);
        c.insert(k(2), chunk(10), Origin::Backend, 1e9);
        let _ = c.get(&k(2));
        let out = c.insert(k(3), chunk(10), Origin::Backend, 0.0);
        assert!(out.admitted);
        assert_eq!(
            out.evicted,
            vec![k(1)],
            "huge benefit must not protect under LRU"
        );
    }

    #[test]
    fn insert_and_get() {
        let mut c = ChunkCache::new(1000, PolicyKind::Benefit);
        let out = c.insert(k(1), chunk(10), Origin::Backend, 5.0);
        assert!(out.admitted);
        assert!(out.evicted.is_empty());
        assert_eq!(c.used_bytes(), 200);
        assert!(c.get(&k(1)).is_some());
        assert!(c.get(&k(2)).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn rejects_chunk_larger_than_budget() {
        let mut c = ChunkCache::new(100, PolicyKind::Benefit);
        let out = c.insert(k(1), chunk(10), Origin::Backend, 5.0);
        assert!(!out.admitted);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn evicts_to_fit() {
        let mut c = ChunkCache::new(400, PolicyKind::Benefit);
        assert!(c.insert(k(1), chunk(10), Origin::Backend, 1.0).admitted);
        assert!(c.insert(k(2), chunk(10), Origin::Backend, 1.0).admitted);
        let out = c.insert(k(3), chunk(10), Origin::Backend, 1.0);
        assert!(out.admitted);
        assert_eq!(out.evicted.len(), 1);
        assert_eq!(c.len(), 2);
        assert!(c.used_bytes() <= 400);
    }

    #[test]
    fn higher_benefit_survives() {
        let mut c = ChunkCache::new(400, PolicyKind::Benefit);
        c.insert(k(1), chunk(10), Origin::Backend, 100.0);
        c.insert(k(2), chunk(10), Origin::Backend, 0.1);
        let out = c.insert(k(3), chunk(10), Origin::Backend, 100.0);
        assert!(out.admitted);
        assert_eq!(out.evicted, vec![k(2)]);
    }

    #[test]
    fn two_level_computed_cannot_evict_backend() {
        let mut c = ChunkCache::new(400, PolicyKind::TwoLevel);
        c.insert(k(1), chunk(10), Origin::Backend, 1.0);
        c.insert(k(2), chunk(10), Origin::Backend, 1.0);
        let out = c.insert(k(3), chunk(10), Origin::Computed, 100.0);
        assert!(
            !out.admitted,
            "computed chunk must not displace backend chunks"
        );
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn two_level_backend_evicts_computed_first() {
        let mut c = ChunkCache::new(400, PolicyKind::TwoLevel);
        c.insert(k(1), chunk(10), Origin::Backend, 0.1);
        c.insert(k(2), chunk(10), Origin::Computed, 1000.0);
        let out = c.insert(k(3), chunk(10), Origin::Backend, 1.0);
        assert!(out.admitted);
        // Even a high-benefit computed chunk falls before any backend chunk.
        assert_eq!(out.evicted, vec![k(2)]);
    }

    #[test]
    fn two_level_computed_evicts_computed() {
        let mut c = ChunkCache::new(400, PolicyKind::TwoLevel);
        c.insert(k(1), chunk(10), Origin::Computed, 1.0);
        c.insert(k(2), chunk(10), Origin::Computed, 1.0);
        let out = c.insert(k(3), chunk(10), Origin::Computed, 1.0);
        assert!(out.admitted);
        assert_eq!(out.evicted.len(), 1);
    }

    #[test]
    fn pinned_chunks_are_not_victims() {
        let mut c = ChunkCache::new(400, PolicyKind::Benefit);
        c.insert(k(1), chunk(10), Origin::Backend, 0.1);
        c.insert(k(2), chunk(10), Origin::Backend, 0.1);
        c.pin(k(1));
        let out = c.insert(k(3), chunk(10), Origin::Backend, 1.0);
        assert!(out.admitted);
        assert_eq!(out.evicted, vec![k(2)]);
        // Now both survivors are pinned or new; pin everything → reject.
        c.pin(k(3));
        let out = c.insert(k(4), chunk(10), Origin::Backend, 1.0);
        assert!(!out.admitted);
        c.unpin(&k(1));
        let out = c.insert(k(4), chunk(10), Origin::Backend, 1.0);
        assert!(out.admitted);
        assert_eq!(out.evicted, vec![k(1)]);
    }

    #[test]
    fn replace_existing_key_updates_bytes() {
        let mut c = ChunkCache::new(1000, PolicyKind::Benefit);
        c.insert(k(1), chunk(10), Origin::Backend, 1.0);
        assert_eq!(c.used_bytes(), 200);
        c.insert(k(1), chunk(20), Origin::Backend, 1.0);
        assert_eq!(c.used_bytes(), 400);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn refused_oversized_replace_keeps_old_entry() {
        let mut c = ChunkCache::new(400, PolicyKind::Benefit);
        assert!(c.insert(k(1), chunk(10), Origin::Backend, 1.0).admitted);
        // The replacement alone exceeds the budget: it must be refused
        // without destroying the resident entry.
        let out = c.insert(k(1), chunk(30), Origin::Backend, 1.0);
        assert!(!out.admitted);
        assert!(out.evicted.is_empty());
        assert!(c.contains(&k(1)));
        assert_eq!(c.peek(&k(1)).unwrap().data.len(), 10, "old data intact");
        assert_eq!(c.used_bytes(), 200);
    }

    #[test]
    fn refused_infeasible_replace_keeps_old_entry() {
        let mut c = ChunkCache::new(400, PolicyKind::TwoLevel);
        assert!(c.insert(k(1), chunk(10), Origin::Backend, 1.0).admitted);
        assert!(c.insert(k(2), chunk(10), Origin::Backend, 1.0).admitted);
        // Replacing k1 with a bigger *computed* chunk needs 200 more bytes,
        // which only backend chunks could free — infeasible under the
        // two-level policy. Both entries must survive.
        let out = c.insert(k(1), chunk(20), Origin::Computed, 100.0);
        assert!(!out.admitted);
        assert!(out.evicted.is_empty());
        assert_eq!(c.len(), 2);
        assert_eq!(c.used_bytes(), 400);
        assert_eq!(c.peek(&k(1)).unwrap().origin, Origin::Backend);
        assert_eq!(c.peek(&k(1)).unwrap().data.len(), 10);
    }

    #[test]
    fn replace_feasible_when_old_entry_bytes_count_as_free() {
        let mut c = ChunkCache::new(400, PolicyKind::TwoLevel);
        assert!(c.insert(k(1), chunk(10), Origin::Backend, 1.0).admitted);
        assert!(c.insert(k(2), chunk(10), Origin::Backend, 1.0).admitted);
        // Same-size replace of a full cache: the old entry's bytes make
        // room, so no eviction is needed and nothing else is touched.
        let out = c.insert(k(1), chunk(10), Origin::Backend, 2.0);
        assert!(out.admitted);
        assert!(out.evicted.is_empty());
        assert_eq!(c.len(), 2);
        assert_eq!(c.used_bytes(), 400);
    }

    #[test]
    fn benefit_normalization_tracks_residents_after_churn() {
        let mut c = ChunkCache::new(400, PolicyKind::Benefit);
        // Heavy churn of huge-benefit entries that do NOT stay resident.
        for i in 0..50 {
            assert!(
                c.insert(k(100 + i), chunk(10), Origin::Backend, 1e6)
                    .admitted
            );
            assert!(c.remove(&k(100 + i)));
        }
        // If departed entries polluted the mean, both residents would be
        // clamped to the same floor clock and the *higher*-benefit chunk
        // (inserted first, hence swept first) would be evicted.
        assert!(c.insert(k(1), chunk(10), Origin::Backend, 4000.0).admitted);
        assert!(c.insert(k(2), chunk(10), Origin::Backend, 1000.0).admitted);
        let out = c.insert(k(3), chunk(10), Origin::Backend, 2000.0);
        assert!(out.admitted);
        assert_eq!(
            out.evicted,
            vec![k(2)],
            "normalization must rank residents by benefit after churn"
        );
    }

    #[test]
    fn boost_group_reports_only_present_chunks() {
        use aggcache_obs::RecordingTracer;
        let recorder = Arc::new(RecordingTracer::new());
        let mut c = ChunkCache::new(600, PolicyKind::TwoLevel);
        c.set_tracer(Some(recorder.clone()));
        c.insert(k(1), chunk(10), Origin::Backend, 1.0);
        c.insert(k(2), chunk(10), Origin::Computed, 1.0);
        let group = [k(1), k(2), k(7), k(8)];
        c.boost_group(group.iter(), 5.0);
        assert!(
            recorder
                .events()
                .iter()
                .any(|e| matches!(e, Event::GroupBoost { chunks: 2, .. })),
            "absent chunks must not be counted in the GroupBoost event"
        );
    }

    #[test]
    fn empty_chunks_are_cacheable() {
        let mut c = ChunkCache::new(100, PolicyKind::TwoLevel);
        let out = c.insert(k(1), chunk(0), Origin::Backend, 1.0);
        assert!(out.admitted);
        assert!(c.contains(&k(1)));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn remove_frees_space() {
        let mut c = ChunkCache::new(400, PolicyKind::TwoLevel);
        c.insert(k(1), chunk(10), Origin::Backend, 1.0);
        assert!(c.remove(&k(1)));
        assert!(!c.remove(&k(1)));
        assert_eq!(c.used_bytes(), 0);
        assert!(c.insert(k(2), chunk(20), Origin::Backend, 1.0).admitted);
    }

    #[test]
    fn tracer_sees_inserts_evictions_and_boosts() {
        use aggcache_obs::RecordingTracer;
        let recorder = Arc::new(RecordingTracer::new());
        let mut c = ChunkCache::new(400, PolicyKind::TwoLevel);
        c.set_tracer(Some(recorder.clone()));
        c.insert(k(1), chunk(10), Origin::Backend, 1.0);
        c.insert(k(2), chunk(10), Origin::Computed, 1.0);
        // Forces an eviction: the computed chunk falls first.
        c.insert(k(3), chunk(10), Origin::Backend, 1.0);
        c.boost_group([k(1)].iter(), 5.0);
        let events = recorder.events();
        let inserts: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::CacheInsert {
                    chunk, admitted, ..
                } => Some((*chunk, *admitted)),
                _ => None,
            })
            .collect();
        assert_eq!(inserts, vec![(1, true), (2, true), (3, true)]);
        let evicts: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Evict { chunk, tier, .. } => Some((*chunk, *tier)),
                _ => None,
            })
            .collect();
        assert_eq!(evicts, vec![(2, Tier::Computed)]);
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::GroupBoost { chunks: 1, .. })));
    }

    #[test]
    fn refused_insert_is_traced_as_refused() {
        use aggcache_obs::RecordingTracer;
        let recorder = Arc::new(RecordingTracer::new());
        let mut c = ChunkCache::new(100, PolicyKind::TwoLevel);
        c.set_tracer(Some(recorder.clone()));
        c.insert(k(1), chunk(10), Origin::Backend, 1.0);
        assert!(matches!(
            recorder.events().last(),
            Some(Event::CacheInsert {
                admitted: false,
                ..
            })
        ));
    }

    #[test]
    fn default_admission_is_benefit_mean() {
        let c = ChunkCache::new(400, PolicyKind::TwoLevel);
        assert_eq!(c.admission(), AdmissionKind::BenefitMean);
        assert!(c.admission_sketch().is_none());
        assert_eq!(c.admission_rejects(), 0);
    }

    #[test]
    fn tiny_lfu_rejects_cold_candidate_over_warm_residents() {
        let mut c = ChunkCache::with_admission(400, PolicyKind::Benefit, AdmissionKind::tiny_lfu());
        c.insert(k(1), chunk(10), Origin::Backend, 1.0);
        c.insert(k(2), chunk(10), Origin::Backend, 1.0);
        // Warm the residents so their sketch frequencies rise.
        for _ in 0..4 {
            let _ = c.get(&k(1));
            let _ = c.get(&k(2));
        }
        // A never-seen candidate must not displace a warm resident.
        let out = c.insert(k(3), chunk(10), Origin::Backend, 100.0);
        assert!(!out.admitted, "cold chunk must be filtered out");
        assert!(out.evicted.is_empty());
        assert_eq!(c.admission_rejects(), 1);
        assert!(c.contains(&k(1)) && c.contains(&k(2)));
    }

    #[test]
    fn tiny_lfu_admits_frequent_candidate() {
        let mut c = ChunkCache::with_admission(400, PolicyKind::Benefit, AdmissionKind::tiny_lfu());
        c.insert(k(1), chunk(10), Origin::Backend, 1.0);
        c.insert(k(2), chunk(10), Origin::Backend, 1.0);
        // Repeated misses on k3 accrue frequency before it is ever cached.
        for _ in 0..6 {
            let _ = c.get(&k(3));
        }
        let out = c.insert(k(3), chunk(10), Origin::Backend, 1.0);
        assert!(out.admitted, "hot chunk must pass the frequency filter");
        assert_eq!(out.evicted.len(), 1);
        assert!(c.contains(&k(3)));
    }

    #[test]
    fn tiny_lfu_no_gate_while_cache_has_room() {
        let mut c =
            ChunkCache::with_admission(1000, PolicyKind::Benefit, AdmissionKind::tiny_lfu());
        // Cold inserts into a cache with room are always admitted.
        assert!(c.insert(k(1), chunk(10), Origin::Backend, 1.0).admitted);
        assert!(c.insert(k(2), chunk(10), Origin::Backend, 1.0).admitted);
        assert_eq!(c.admission_rejects(), 0);
    }

    #[test]
    fn two_level_admission_bars_low_benefit_computed() {
        let mut c = ChunkCache::with_admission(400, PolicyKind::Benefit, AdmissionKind::TwoLevel);
        c.insert(k(1), chunk(10), Origin::Backend, 100.0);
        c.insert(k(2), chunk(10), Origin::Backend, 100.0);
        // A computed chunk far below the resident mean is refused...
        let out = c.insert(k(3), chunk(10), Origin::Computed, 1.0);
        assert!(!out.admitted);
        assert_eq!(c.admission_rejects(), 1);
        // ...but a backend chunk of the same benefit enters unconditionally.
        let out = c.insert(k(4), chunk(10), Origin::Backend, 1.0);
        assert!(out.admitted);
        // And a computed chunk at/above the mean passes the bar.
        let out = c.insert(k(5), chunk(10), Origin::Computed, 500.0);
        assert!(out.admitted);
    }

    #[test]
    fn group_boost_protects_group() {
        let mut c = ChunkCache::new(600, PolicyKind::TwoLevel);
        c.insert(k(1), chunk(10), Origin::Computed, 1.0);
        c.insert(k(2), chunk(10), Origin::Computed, 1.0);
        c.insert(k(3), chunk(10), Origin::Computed, 1.0);
        let group = [k(1), k(2)];
        c.boost_group(group.iter(), 50.0);
        let out = c.insert(k(4), chunk(10), Origin::Computed, 1.0);
        assert!(out.admitted);
        assert_eq!(out.evicted, vec![k(3)]);
    }
}
