//! Pluggable cache-admission policies (the "admission lab").
//!
//! Replacement decides *who leaves* when the cache is full; admission
//! decides *whether the newcomer may enter at all*. The paper never
//! separates the two — every fetched or computed chunk is offered to the
//! replacement policy unconditionally — which works on its single replayed
//! query stream but falls apart under multi-tenant contention, where one
//! tenant's scan traffic can flush another tenant's hot working set
//! through a cache that admits everything.
//!
//! Three policies are provided, selected by [`AdmissionKind`]:
//!
//! * [`AdmissionKind::BenefitMean`] — the repo's historical behaviour and
//!   the bit-identical default: every feasible insert is admitted, and the
//!   only "bar" is indirect — a chunk whose benefit is far below the
//!   resident mean is seeded with a floor clock weight and swept out
//!   quickly. No admission-time state, no behaviour change.
//! * [`AdmissionKind::TwoLevel`] — the paper's two-level idea applied at
//!   admission time: backend-fetched chunks (expensive to reproduce) are
//!   always admitted, while a *computed* chunk may displace residents only
//!   if its benefit is at least the resident mean. Cheap recomputable
//!   chunks stop churning the cache under contention.
//! * [`AdmissionKind::TinyLfu`] — a TinyLFU-style frequency filter: a
//!   hand-rolled [`CountMinSketch`] estimates each chunk's reference
//!   frequency (keyed on the packed `u64` chunk key, so sketch hashing is
//!   one integer mix per row), and an insert that requires eviction is
//!   admitted only if the candidate's estimated frequency *exceeds* the
//!   coldest eviction-eligible resident's. Sketch counters are 4-bit
//!   (capped at 15) and halved every `sample_window` references, so the
//!   filter ages: yesterday's hot chunks cannot block today's.
//!
//! Admission only ever gates inserts that need to evict: while the cache
//! has room, every policy admits everything (an empty cache has nothing
//! worth protecting).

use aggcache_chunks::hash::{FxBuildHasher, PackedChunkKey};
use std::hash::BuildHasher;

/// Admission-policy selector, carried by the manager configuration.
///
/// The default ([`AdmissionKind::BenefitMean`]) reproduces the historical
/// admit-everything-feasible behaviour bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmissionKind {
    /// Admit every feasible insert (historical behaviour; the benefit-mean
    /// clock seeding is the only — indirect — admission bar).
    #[default]
    BenefitMean,
    /// Backend chunks always enter; computed chunks displace residents
    /// only when their benefit meets the resident mean.
    TwoLevel,
    /// TinyLFU-style frequency filter over a count-min sketch.
    TinyLfu {
        /// Counters per sketch row (rounded up to a power of two, min 16).
        counters: u32,
        /// References between aging steps (each step halves every
        /// counter). Must be > 0.
        sample_window: u32,
    },
}

impl AdmissionKind {
    /// A TinyLFU filter with the default sketch geometry: 4096 counters
    /// per row, aged every 1024 references.
    ///
    /// The short aging window matters: the window bounds how long a
    /// stale-hot resident's estimate can block new admissions after the
    /// working set drifts. For budgets of a few hundred resident chunks,
    /// halving every ~1024 references tracks drift closely; windows much
    /// larger than the resident population lock the cache into yesterday's
    /// working set.
    pub fn tiny_lfu() -> Self {
        Self::TinyLfu {
            counters: 4096,
            sample_window: 1024,
        }
    }

    /// Stable lowercase name (reports, CLI parsing).
    pub fn name(&self) -> &'static str {
        match self {
            Self::BenefitMean => "benefit_mean",
            Self::TwoLevel => "two_level",
            Self::TinyLfu { .. } => "tiny_lfu",
        }
    }

    /// Parses a policy name as produced by [`AdmissionKind::name`]
    /// (TinyLFU gets the default geometry).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "benefit_mean" => Some(Self::BenefitMean),
            "two_level" => Some(Self::TwoLevel),
            "tiny_lfu" => Some(Self::tiny_lfu()),
            _ => None,
        }
    }

    /// All three lab policies (sweep order: baseline first).
    pub fn lab() -> [Self; 3] {
        [Self::BenefitMean, Self::TwoLevel, Self::tiny_lfu()]
    }
}

/// Sketch rows: the classic 4-row count-min layout.
const SKETCH_ROWS: usize = 4;

/// Per-row seeds mixed into the key before hashing, so the rows are
/// independent hash functions over the same key space.
const ROW_SEEDS: [u64; SKETCH_ROWS] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0xd6e8_feb8_6659_fd93,
];

/// Counters saturate at 15 (4-bit TinyLFU counters, stored in a byte for
/// simplicity — the accounting convention, not the storage optimization,
/// is what the lab measures).
const COUNTER_MAX: u8 = 15;

/// A hand-rolled count-min sketch over packed chunk keys with conservative
/// update and periodic halving ("aging"), as used by TinyLFU admission.
///
/// Fully deterministic: row hashes come from the repo's seeded FxHash-style
/// mixer, so the same reference stream always produces the same estimates.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    /// Row width minus one (width is a power of two).
    mask: usize,
    rows: Vec<Vec<u8>>,
    /// References recorded since the last aging step.
    since_reset: u64,
    /// References between aging steps.
    sample_window: u64,
    /// Completed aging steps (observability / tests).
    resets: u64,
}

impl CountMinSketch {
    /// Creates a sketch with at least `counters` counters per row
    /// (rounded up to a power of two, min 16), aged every `sample_window`
    /// references.
    pub fn new(counters: u32, sample_window: u32) -> Self {
        let width = counters.max(16).next_power_of_two() as usize;
        Self {
            mask: width - 1,
            rows: vec![vec![0u8; width]; SKETCH_ROWS],
            since_reset: 0,
            sample_window: u64::from(sample_window.max(1)),
            resets: 0,
        }
    }

    #[inline]
    fn slot(&self, key: PackedChunkKey, row: usize) -> usize {
        (FxBuildHasher::default().hash_one(key ^ ROW_SEEDS[row]) as usize) & self.mask
    }

    /// Records one reference to `key` (conservative update: only the
    /// minimal counters are bumped), aging the sketch when the sample
    /// window fills.
    pub fn record(&mut self, key: PackedChunkKey) {
        let est = self.estimate(key);
        if est < COUNTER_MAX {
            for row in 0..SKETCH_ROWS {
                let slot = self.slot(key, row);
                let c = &mut self.rows[row][slot];
                if *c == est {
                    *c += 1;
                }
            }
        }
        self.since_reset += 1;
        if self.since_reset >= self.sample_window {
            self.age();
        }
    }

    /// The estimated reference frequency of `key` (min over rows; an
    /// upper bound on the true count since the last few aging steps).
    pub fn estimate(&self, key: PackedChunkKey) -> u8 {
        (0..SKETCH_ROWS)
            .map(|row| self.rows[row][self.slot(key, row)])
            .min()
            .unwrap_or(0)
    }

    /// Halves every counter — the TinyLFU aging/"reset" step.
    fn age(&mut self) {
        for row in &mut self.rows {
            for c in row.iter_mut() {
                *c >>= 1;
            }
        }
        self.since_reset = 0;
        self.resets += 1;
    }

    /// Completed aging steps.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

/// The per-cache admission state matching an [`AdmissionKind`].
#[derive(Debug)]
pub(crate) enum AdmissionState {
    BenefitMean,
    TwoLevel,
    TinyLfu(CountMinSketch),
}

impl AdmissionState {
    pub(crate) fn new(kind: AdmissionKind) -> Self {
        match kind {
            AdmissionKind::BenefitMean => Self::BenefitMean,
            AdmissionKind::TwoLevel => Self::TwoLevel,
            AdmissionKind::TinyLfu {
                counters,
                sample_window,
            } => Self::TinyLfu(CountMinSketch::new(counters, sample_window)),
        }
    }

    /// Records a reference (lookup or insert attempt); only the frequency
    /// filter keeps state.
    #[inline]
    pub(crate) fn record(&mut self, key: PackedChunkKey) {
        if let Self::TinyLfu(sketch) = self {
            sketch.record(key);
        }
    }

    pub(crate) fn sketch(&self) -> Option<&CountMinSketch> {
        match self {
            Self::TinyLfu(sketch) => Some(sketch),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_grow_and_saturate() {
        let mut s = CountMinSketch::new(64, 1_000_000);
        assert_eq!(s.estimate(42), 0);
        for _ in 0..5 {
            s.record(42);
        }
        assert_eq!(s.estimate(42), 5);
        for _ in 0..100 {
            s.record(42);
        }
        assert_eq!(s.estimate(42), COUNTER_MAX, "counters saturate at 15");
    }

    #[test]
    fn aging_halves_counters() {
        let mut s = CountMinSketch::new(64, 10);
        for _ in 0..9 {
            s.record(7);
        }
        assert_eq!(s.estimate(7), 9);
        s.record(7); // 10th reference fills the window → halve
        assert_eq!(s.resets(), 1);
        assert_eq!(s.estimate(7), 5, "10 capped references halve to 5");
    }

    #[test]
    fn distinct_keys_mostly_independent() {
        let mut s = CountMinSketch::new(1024, 1_000_000);
        for _ in 0..10 {
            s.record(1);
        }
        // A wide sketch with 4 rows: an untouched key stays near zero.
        assert_eq!(s.estimate(1), 10);
        assert!(s.estimate(999_999) <= 1);
    }

    #[test]
    fn deterministic_across_instances() {
        let run = || {
            let mut s = CountMinSketch::new(128, 50);
            for k in 0..200u64 {
                s.record(k % 17);
            }
            (0..17u64).map(|k| s.estimate(k)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in AdmissionKind::lab() {
            assert_eq!(AdmissionKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(AdmissionKind::parse("nope"), None);
        assert_eq!(AdmissionKind::default(), AdmissionKind::BenefitMean);
    }
}
