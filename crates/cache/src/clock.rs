use aggcache_chunks::hash::{PackedChunkKey, PackedMap};

/// A CLOCK ring over packed chunk keys with real-valued clock weights.
///
/// The sweep hand visits entries circularly; an entry whose clock has run
/// out is the victim, otherwise its clock is decremented and the hand moves
/// on. Benefit weighting is achieved by seeding clocks proportionally to
/// chunk benefit (normalized by the caller), so expensive chunks survive
/// more sweep passes — the paper's "benefit based replacement … we
/// approximate LRU with CLOCK" (§6.3).
///
/// Keys are packed `u64`s ([`aggcache_chunks::ChunkKey::pack`]) so the
/// position index hashes a single integer through the crate's FxHash-style
/// hasher instead of a two-field struct through SipHash.
#[derive(Debug, Default)]
pub struct ClockRing {
    keys: Vec<PackedChunkKey>,
    clocks: Vec<f64>,
    pos: PackedMap<usize>,
    hand: usize,
    rounds: u64,
}

/// Upper clamp on clock values: together with [`SWEEP_DECREMENT`] this
/// bounds the number of sweep passes any entry can survive, keeping victim
/// search `O(n · MAX_CLOCK / SWEEP_DECREMENT)` worst case.
pub(crate) const MAX_CLOCK: f64 = 64.0;

/// Clock decrement per sweep visit. Finer than the minimum normalized clock
/// (0.25) so that benefit differences below 1.0 still order victims.
pub(crate) const SWEEP_DECREMENT: f64 = 0.25;

impl ClockRing {
    /// Creates an empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: PackedChunkKey) -> bool {
        self.pos.contains_key(&key)
    }

    /// Inserts `key` with an initial clock value. Panics if already present.
    pub fn insert(&mut self, key: PackedChunkKey, clock: f64) {
        let prev = self.pos.insert(key, self.keys.len());
        assert!(prev.is_none(), "key already in ring");
        self.keys.push(key);
        self.clocks.push(clock.clamp(0.0, MAX_CLOCK));
    }

    /// Removes `key` if present; returns whether it was there.
    ///
    /// The sweep invariant — slots `[hand, len)` are exactly the entries
    /// still due a visit this pass — is preserved: `swap_remove` moves the
    /// back entry (always unvisited, since `hand < len`) into slot `i`, so
    /// when `i` is below the hand the moved entry would silently skip the
    /// rest of the pass while the slot at `hand - 1` would be due a second
    /// visit after the decrement. Swapping it up into `hand - 1` and pulling
    /// the hand back keeps every remaining entry due exactly one visit.
    pub fn remove(&mut self, key: PackedChunkKey) -> bool {
        let Some(i) = self.pos.remove(&key) else {
            return false;
        };
        self.keys.swap_remove(i);
        self.clocks.swap_remove(i);
        if i < self.keys.len() {
            self.pos.insert(self.keys[i], i);
        }
        if i < self.hand {
            self.hand -= 1;
            if i < self.hand {
                self.keys.swap(i, self.hand);
                self.clocks.swap(i, self.hand);
                self.pos.insert(self.keys[i], i);
                self.pos.insert(self.keys[self.hand], self.hand);
            }
        }
        if self.hand >= self.keys.len() {
            self.hand = 0;
        }
        true
    }

    /// Refreshes `key`'s clock to at least `clock` (a cache hit).
    pub fn touch(&mut self, key: PackedChunkKey, clock: f64) {
        if let Some(&i) = self.pos.get(&key) {
            self.clocks[i] = self.clocks[i].max(clock.clamp(0.0, MAX_CLOCK));
        }
    }

    /// Adds `amount` to `key`'s clock (the two-level policy's group boost).
    /// Returns whether the key was present.
    pub fn boost(&mut self, key: PackedChunkKey, amount: f64) -> bool {
        if let Some(&i) = self.pos.get(&key) {
            self.clocks[i] = (self.clocks[i] + amount.max(0.0)).min(MAX_CLOCK);
            true
        } else {
            false
        }
    }

    /// The current clock value of `key`, if present (for tests/inspection).
    pub fn clock_of(&self, key: PackedChunkKey) -> Option<f64> {
        self.pos.get(&key).map(|&i| self.clocks[i])
    }

    /// Completed sweep rounds: how many times the hand wrapped past the
    /// end of the ring while searching for victims. Exported in the
    /// `Evict` trace event.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Advances the hand one slot, counting full wraps as sweep rounds.
    fn advance(&mut self) {
        self.hand += 1;
        if self.hand >= self.keys.len() {
            self.hand = 0;
            self.rounds += 1;
        }
    }

    /// Sweeps for a victim, skipping entries for which `skip` returns true
    /// (pinned chunks). Decrements the clocks it passes over. Returns the
    /// victim key *without removing it* — callers remove via
    /// [`ClockRing::remove`] after processing.
    pub fn find_victim(
        &mut self,
        mut skip: impl FnMut(PackedChunkKey) -> bool,
    ) -> Option<PackedChunkKey> {
        if self.keys.is_empty() {
            return None;
        }
        let n = self.keys.len();
        // Every visit decrements a clock, and clocks are ≤ MAX_CLOCK, so a
        // bounded number of full passes suffices unless everything is
        // skipped.
        let max_visits = n * ((MAX_CLOCK / SWEEP_DECREMENT) as usize + 2);
        let mut skipped_all_pass = 0usize;
        for _ in 0..max_visits {
            if self.hand >= n {
                self.hand = 0;
            }
            let key = self.keys[self.hand];
            if skip(key) {
                self.advance();
                skipped_all_pass += 1;
                if skipped_all_pass >= n {
                    // One full pass where everything was pinned.
                    return None;
                }
                continue;
            }
            skipped_all_pass = 0;
            if self.clocks[self.hand] <= 0.0 {
                return Some(key);
            }
            self.clocks[self.hand] -= SWEEP_DECREMENT;
            self.advance();
        }
        // All clocks must have reached zero by now; take the first
        // non-skipped entry.
        let start = self.hand;
        for off in 0..n {
            let i = (start + off) % n;
            if !skip(self.keys[i]) {
                return Some(self.keys[i]);
            }
        }
        None
    }

    /// Iterates over the keys currently in the ring (arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = PackedChunkKey> + '_ {
        self.keys.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggcache_chunks::ChunkKey;
    use aggcache_schema::GroupById;

    fn k(i: u64) -> PackedChunkKey {
        ChunkKey::new(GroupById(0), i).pack()
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut r = ClockRing::new();
        r.insert(k(1), 1.0);
        r.insert(k(2), 2.0);
        assert_eq!(r.len(), 2);
        assert!(r.contains(k(1)));
        assert!(r.remove(k(1)));
        assert!(!r.remove(k(1)));
        assert_eq!(r.len(), 1);
        assert!(r.contains(k(2)));
    }

    #[test]
    fn victim_is_lowest_clock_first() {
        let mut r = ClockRing::new();
        r.insert(k(1), 3.0);
        r.insert(k(2), 0.0);
        r.insert(k(3), 5.0);
        let v = r.find_victim(|_| false).unwrap();
        assert_eq!(v, k(2));
    }

    #[test]
    fn sweep_decrements_until_victim() {
        let mut r = ClockRing::new();
        r.insert(k(1), 2.0);
        r.insert(k(2), 1.0);
        // k2 runs out first (after the sweep decrements both).
        let v = r.find_victim(|_| false).unwrap();
        assert_eq!(v, k(2));
        r.remove(v);
        let v2 = r.find_victim(|_| false).unwrap();
        assert_eq!(v2, k(1));
    }

    #[test]
    fn skip_respects_pins() {
        let mut r = ClockRing::new();
        r.insert(k(1), 0.0);
        r.insert(k(2), 0.0);
        let v = r.find_victim(|key| key == k(1)).unwrap();
        assert_eq!(v, k(2));
        // Everything pinned → no victim.
        assert!(r.find_victim(|_| true).is_none());
    }

    #[test]
    fn boost_extends_survival() {
        let mut r = ClockRing::new();
        r.insert(k(1), 1.0);
        r.insert(k(2), 1.0);
        assert!(r.boost(k(1), 10.0));
        assert!(!r.boost(k(9), 10.0));
        let v = r.find_victim(|_| false).unwrap();
        assert_eq!(v, k(2));
    }

    #[test]
    fn touch_refreshes_clock() {
        let mut r = ClockRing::new();
        r.insert(k(1), 1.0);
        r.insert(k(2), 3.0);
        r.touch(k(1), 8.0);
        let v = r.find_victim(|_| false).unwrap();
        assert_eq!(v, k(2));
    }

    #[test]
    fn clocks_are_clamped() {
        let mut r = ClockRing::new();
        r.insert(k(1), 1e12);
        assert_eq!(r.clock_of(k(1)), Some(MAX_CLOCK));
        r.boost(k(1), 1e12);
        assert_eq!(r.clock_of(k(1)), Some(MAX_CLOCK));
    }

    #[test]
    fn rounds_count_full_sweeps() {
        let mut r = ClockRing::new();
        r.insert(k(1), 1.0);
        r.insert(k(2), 1.0);
        assert_eq!(r.rounds(), 0);
        // Clocks at 1.0 need 4 decrements each: the sweep wraps several
        // times before a victim emerges.
        let _ = r.find_victim(|_| false).unwrap();
        assert!(r.rounds() >= 1);
    }

    #[test]
    fn empty_ring_has_no_victim() {
        let mut r = ClockRing::new();
        assert!(r.find_victim(|_| false).is_none());
    }

    #[test]
    fn remove_fixes_hand_and_positions() {
        let mut r = ClockRing::new();
        for i in 0..5 {
            r.insert(k(i), f64::from(i as u32));
        }
        // Advance the hand a bit.
        let _ = r.find_victim(|_| false);
        r.remove(k(0));
        r.remove(k(4));
        // All remaining keys still reachable and consistent.
        let mut left: Vec<u64> = r.keys().map(|key| ChunkKey::unpack(key).chunk).collect();
        left.sort_unstable();
        assert_eq!(left, vec![1, 2, 3]);
        for i in [1u64, 2, 3] {
            assert!(r.contains(k(i)));
        }
        assert!(r.find_victim(|_| false).is_some());
    }

    #[test]
    fn remove_below_hand_keeps_sweep_order_fair() {
        let mut r = ClockRing::new();
        r.insert(k(0), 2.0); // A
        r.insert(k(1), 0.25); // B — runs out first, parking the hand at slot 1
        r.insert(k(2), 2.0); // C
        r.insert(k(3), 2.0); // D
        assert_eq!(r.find_victim(|_| false), Some(k(1)));
        r.remove(k(1)); // victim removal at the hand: D fills slot 1
        assert_eq!(r.clock_of(k(2)), Some(1.75));
        assert_eq!(r.clock_of(k(3)), Some(1.75));
        // External removal below the hand (slot 0 < hand 1). C is moved out
        // of the back slot; without hand adjustment it would skip the rest
        // of this pass and D — equal clock but *later* in sweep order —
        // would run out first.
        r.remove(k(0));
        let v = r.find_victim(|_| false).unwrap();
        assert_eq!(
            v,
            k(2),
            "sweep order must be preserved across swap_remove below the hand"
        );
        // Both survivors were decremented in lock-step: equal clocks.
        assert_eq!(r.clock_of(k(2)), Some(0.0));
        assert_eq!(r.clock_of(k(3)), Some(0.0));
    }
}
