//! The mid-tier chunk cache with benefit-based replacement (paper §6).
//!
//! Two replacement policies are provided:
//!
//! * [`PolicyKind::Benefit`] — the plain benefit-weighted CLOCK of
//!   \[DRSN98\]: each chunk's clock is seeded from its benefit (its cost of
//!   (re)computation), approximating benefit-weighted LRU.
//! * [`PolicyKind::TwoLevel`] — the paper's two-level policy: chunks
//!   fetched from the backend outrank cache-computed chunks (a computed
//!   chunk can never evict a backend chunk), groups of chunks used together
//!   to compute an aggregate get their clocks boosted by the computed
//!   chunk's benefit, and the cache can be pre-loaded with a group-by.
//!
//! The cache is byte-budgeted using the paper's accounting convention of
//! 20 bytes per tuple ([`aggcache_chunks::PAPER_TUPLE_BYTES`]), so cache
//! sizes like "10 MB" are comparable to the paper's.

#![warn(missing_docs)]

mod admission;
mod cache;
mod clock;

pub use admission::{AdmissionKind, CountMinSketch};
pub use cache::{CachedChunk, ChunkCache, InsertOutcome, Origin, PolicyKind};
pub use clock::ClockRing;
