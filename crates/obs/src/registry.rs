use crate::json::{push_f64, push_str};
use crate::{Event, Histogram, LookupOutcome, Tier, Tracer};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Per-group-by-level counters aggregated from [`Event::QueryDone`] and
/// lookup events.
#[derive(Debug, Default, Clone)]
pub struct LevelStats {
    /// Queries answered at this group-by.
    pub queries: u64,
    /// Complete hits (answered entirely from the cache).
    pub complete_hits: u64,
    /// Chunks answered directly from the cache.
    pub chunks_hit: u64,
    /// Chunks computed by in-cache aggregation.
    pub chunks_computed: u64,
    /// Chunks fetched from the backend.
    pub chunks_missed: u64,
    /// Chunks demoted to backend fetches by the cost-based optimizer.
    pub chunks_demoted: u64,
    /// Tuples aggregated in the cache.
    pub tuples_aggregated: u64,
    /// Base tuples scanned by the backend.
    pub backend_tuples: u64,
    /// Lattice nodes visited during lookups.
    pub lookup_nodes: u64,
    /// Count/cost table cells written.
    pub table_writes: u64,
    /// Virtual backend milliseconds.
    pub backend_virtual_ms: f64,
    /// Virtual aggregation milliseconds.
    pub agg_virtual_ms: f64,
    /// Virtual lookup milliseconds.
    pub lookup_virtual_ms: f64,
    /// Virtual table-update milliseconds.
    pub update_virtual_ms: f64,
}

/// Per-tenant counters aggregated from [`Event::QueryDone`], including a
/// virtual-time latency histogram for per-tenant tail latency.
#[derive(Debug, Default, Clone)]
pub struct TenantStats {
    /// Queries issued by this tenant.
    pub queries: u64,
    /// Complete hits (answered entirely from the cache).
    pub complete_hits: u64,
    /// Chunks answered directly from the cache.
    pub chunks_hit: u64,
    /// Chunks computed by in-cache aggregation.
    pub chunks_computed: u64,
    /// Chunks fetched from the backend.
    pub chunks_missed: u64,
    /// Chunks served degraded (backend unavailable, answered from cached
    /// aggregates).
    pub chunks_degraded: u64,
    /// Queries with at least one degraded chunk.
    pub degraded_queries: u64,
    /// Total virtual milliseconds across this tenant's queries.
    pub total_virtual_ms: f64,
    /// Per-query total virtual latency (microseconds) — the source for
    /// per-tenant p95/p99 tail latency.
    pub latency_virtual_us: Histogram,
}

impl TenantStats {
    /// Fraction of queries answered entirely from the cache.
    pub fn complete_hit_ratio(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.complete_hits as f64 / self.queries as f64
        }
    }

    /// Fraction of chunk demands served without a backend fetch.
    pub fn chunk_hit_ratio(&self) -> f64 {
        let total = self.chunks_hit + self.chunks_computed + self.chunks_missed;
        if total == 0 {
            0.0
        } else {
            (self.chunks_hit + self.chunks_computed) as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct Inner {
    levels: BTreeMap<u32, LevelStats>,
    tenants: BTreeMap<u32, TenantStats>,
    /// Wall-clock histograms (nanoseconds). Strictly separate from `virt`.
    wall_ns: BTreeMap<&'static str, Histogram>,
    /// Virtual-time histograms (microseconds). Strictly separate from
    /// `wall_ns`.
    virtual_us: BTreeMap<&'static str, Histogram>,
    counters: BTreeMap<&'static str, u64>,
}

impl Inner {
    fn bump(&mut self, key: &'static str, by: u64) {
        *self.counters.entry(key).or_insert(0) += by;
    }

    fn wall(&mut self, key: &'static str, ns: u64) {
        self.wall_ns.entry(key).or_default().record(ns as f64);
    }

    fn virt(&mut self, key: &'static str, us: f64) {
        self.virtual_us.entry(key).or_default().record(us);
    }
}

/// Aggregates the event stream into per-group-by-level counters plus
/// latency histograms, with JSON and CSV exporters.
///
/// Implements [`Tracer`], so it can be installed directly or composed with
/// a [`crate::RecordingTracer`] behind a [`crate::FanoutTracer`].
///
/// Wall-clock nanoseconds (`wall_ns` namespace) and virtual-time
/// microseconds (`virtual_us` namespace) are kept strictly separate: no
/// histogram, counter or export column ever mixes the two domains.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the per-level stats, keyed by group-by id.
    pub fn levels(&self) -> BTreeMap<u32, LevelStats> {
        self.inner.lock().unwrap().levels.clone()
    }

    /// Borrowed view of the per-tenant stats: no per-call allocation or
    /// histogram copy. The view holds the registry lock, so keep it short-
    /// lived — concurrent `emit`s block until it is dropped.
    pub fn tenants_view(&self) -> TenantsView<'_> {
        TenantsView {
            guard: self.inner.lock().unwrap(),
        }
    }

    /// Snapshot of one named counter (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of a wall-clock histogram (nanoseconds), if recorded.
    pub fn wall_histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.lock().unwrap().wall_ns.get(name).cloned()
    }

    /// Snapshot of a virtual-time histogram (microseconds), if recorded.
    pub fn virtual_histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.lock().unwrap().virtual_us.get(name).cloned()
    }

    /// Serializes the registry as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        self.write_json(&mut out);
        out
    }

    /// Serializes the registry as one JSON object into `out`.
    pub fn write_json(&self, out: &mut String) {
        let inner = self.inner.lock().unwrap();
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in inner.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str(out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"levels\":[");
        for (i, (gb, s)) in inner.levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"gb\":{gb}");
            for (k, v) in [
                ("queries", s.queries),
                ("complete_hits", s.complete_hits),
                ("chunks_hit", s.chunks_hit),
                ("chunks_computed", s.chunks_computed),
                ("chunks_missed", s.chunks_missed),
                ("chunks_demoted", s.chunks_demoted),
                ("tuples_aggregated", s.tuples_aggregated),
                ("backend_tuples", s.backend_tuples),
                ("lookup_nodes", s.lookup_nodes),
                ("table_writes", s.table_writes),
            ] {
                out.push(',');
                push_str(out, k);
                out.push(':');
                out.push_str(&v.to_string());
            }
            for (k, v) in [
                ("backend_virtual_ms", s.backend_virtual_ms),
                ("agg_virtual_ms", s.agg_virtual_ms),
                ("lookup_virtual_ms", s.lookup_virtual_ms),
                ("update_virtual_ms", s.update_virtual_ms),
            ] {
                out.push(',');
                push_str(out, k);
                out.push(':');
                push_f64(out, v);
            }
            out.push('}');
        }
        out.push_str("],\"tenants\":[");
        for (i, (tenant, s)) in inner.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"tenant\":{tenant}");
            for (k, v) in [
                ("queries", s.queries),
                ("complete_hits", s.complete_hits),
                ("chunks_hit", s.chunks_hit),
                ("chunks_computed", s.chunks_computed),
                ("chunks_missed", s.chunks_missed),
                ("chunks_degraded", s.chunks_degraded),
                ("degraded_queries", s.degraded_queries),
            ] {
                out.push(',');
                push_str(out, k);
                out.push(':');
                out.push_str(&v.to_string());
            }
            out.push_str(",\"total_virtual_ms\":");
            push_f64(out, s.total_virtual_ms);
            out.push_str(",\"latency_virtual_us\":");
            s.latency_virtual_us.write_json(out);
            out.push('}');
        }
        out.push_str("],\"wall_ns\":{");
        for (i, (k, h)) in inner.wall_ns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str(out, k);
            out.push(':');
            h.write_json(out);
        }
        out.push_str("},\"virtual_us\":{");
        for (i, (k, h)) in inner.virtual_us.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str(out, k);
            out.push(':');
            h.write_json(out);
        }
        out.push_str("}}");
    }

    /// Serializes the per-level table as CSV (header + one row per
    /// group-by). Wall-clock columns are deliberately absent: per-level
    /// aggregates are virtual-time only.
    pub fn to_csv(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::from(
            "gb,queries,complete_hits,chunks_hit,chunks_computed,chunks_missed,\
             chunks_demoted,tuples_aggregated,backend_tuples,lookup_nodes,table_writes,\
             backend_virtual_ms,agg_virtual_ms,lookup_virtual_ms,update_virtual_ms\n",
        );
        for (gb, s) in &inner.levels {
            let _ = writeln!(
                out,
                "{gb},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                s.queries,
                s.complete_hits,
                s.chunks_hit,
                s.chunks_computed,
                s.chunks_missed,
                s.chunks_demoted,
                s.tuples_aggregated,
                s.backend_tuples,
                s.lookup_nodes,
                s.table_writes,
                s.backend_virtual_ms,
                s.agg_virtual_ms,
                s.lookup_virtual_ms,
                s.update_virtual_ms,
            );
        }
        out
    }

    /// Serializes the per-tenant table as CSV (header + one row per
    /// tenant). Virtual-time only, like the per-level table; the p95/p99
    /// columns are log2-bucket upper bounds in virtual microseconds.
    pub fn tenants_to_csv(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::from(
            "tenant,queries,complete_hits,chunks_hit,chunks_computed,chunks_missed,\
             chunks_degraded,degraded_queries,total_virtual_ms,p95_virtual_us,p99_virtual_us\n",
        );
        for (tenant, s) in &inner.tenants {
            let _ = writeln!(
                out,
                "{tenant},{},{},{},{},{},{},{},{},{},{}",
                s.queries,
                s.complete_hits,
                s.chunks_hit,
                s.chunks_computed,
                s.chunks_missed,
                s.chunks_degraded,
                s.degraded_queries,
                s.total_virtual_ms,
                s.latency_virtual_us.quantile(0.95).unwrap_or(0.0),
                s.latency_virtual_us.quantile(0.99).unwrap_or(0.0),
            );
        }
        out
    }
}

/// A borrowed, lock-holding view of the per-tenant aggregation:
/// allocation-free per-tenant stats, cheap enough for per-query hot paths.
pub struct TenantsView<'a> {
    guard: std::sync::MutexGuard<'a, Inner>,
}

impl TenantsView<'_> {
    /// One tenant's stats, if it has completed any queries.
    pub fn get(&self, tenant: u32) -> Option<&TenantStats> {
        self.guard.tenants.get(&tenant)
    }

    /// Iterates tenants in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &TenantStats)> {
        self.guard.tenants.iter().map(|(&t, s)| (t, s))
    }

    /// Number of tenants seen so far.
    pub fn len(&self) -> usize {
        self.guard.tenants.len()
    }

    /// Whether no tenant has completed a query yet.
    pub fn is_empty(&self) -> bool {
        self.guard.tenants.is_empty()
    }
}

impl Tracer for MetricsRegistry {
    fn emit(&self, event: &Event) {
        let mut inner = self.inner.lock().unwrap();
        inner.bump("events", 1);
        match event {
            Event::ProbeStart { .. } => inner.bump("probe_start", 1),
            Event::ChunkLookup { outcome, nodes, .. } => {
                inner.bump(
                    match outcome {
                        LookupOutcome::Hit => "lookup_hit",
                        LookupOutcome::Computable => "lookup_computable",
                        LookupOutcome::Miss => "lookup_miss",
                    },
                    1,
                );
                inner.bump("lookup_nodes", *nodes);
            }
            Event::ProbeEnd { wall_ns, .. } => {
                inner.bump("probe_end", 1);
                inner.wall("probe", *wall_ns);
            }
            Event::PlanChosen {
                predicted_tuples,
                actual_tuples,
                ..
            } => {
                inner.bump("plans_chosen", 1);
                inner.bump("plan_predicted_tuples", *predicted_tuples);
                inner.bump("plan_actual_tuples", *actual_tuples);
            }
            Event::BackendFetch { virtual_ms, .. } => {
                inner.bump("backend_fetches", 1);
                inner.virt("backend_fetch", virtual_ms * 1000.0);
            }
            Event::FetchRetry {
                backoff_virtual_ms, ..
            } => {
                inner.bump("fetch_retries", 1);
                inner.virt("fetch_backoff", backoff_virtual_ms * 1000.0);
            }
            Event::FetchTimeout { virtual_ms, .. } => {
                inner.bump("fetch_timeouts", 1);
                inner.virt("fetch_timeout", virtual_ms * 1000.0);
            }
            Event::FetchFailed {
                attempts,
                virtual_ms,
                ..
            } => {
                inner.bump("fetch_failures", 1);
                inner.bump("fetch_failure_attempts", u64::from(*attempts));
                inner.virt("fetch_failed", virtual_ms * 1000.0);
            }
            Event::DegradedServe { tuples, .. } => {
                inner.bump("degraded_serves", 1);
                inner.bump("degraded_tuples", *tuples);
            }
            Event::CacheInsert { admitted, .. } => {
                inner.bump(
                    if *admitted {
                        "inserts_admitted"
                    } else {
                        "inserts_refused"
                    },
                    1,
                );
            }
            Event::Evict { tier, .. } => {
                inner.bump(
                    match tier {
                        Tier::Fetched => "evictions_fetched",
                        Tier::Computed => "evictions_computed",
                        Tier::Spilled => "evictions_spilled",
                    },
                    1,
                );
            }
            Event::SpillWrite {
                bytes, virtual_ms, ..
            } => {
                inner.bump("spill_writes", 1);
                inner.bump("spill_bytes_written", *bytes);
                inner.virt("spill_write", virtual_ms * 1000.0);
            }
            Event::SpillRead {
                bytes, virtual_ms, ..
            } => {
                inner.bump("spill_reads", 1);
                inner.bump("spill_bytes_read", *bytes);
                inner.virt("spill_read", virtual_ms * 1000.0);
            }
            Event::SpillPromote { admitted, .. } => {
                inner.bump(
                    if *admitted {
                        "spill_promotes_admitted"
                    } else {
                        "spill_promotes_refused"
                    },
                    1,
                );
            }
            Event::WarmStart {
                chunks,
                bytes,
                virtual_ms,
            } => {
                inner.bump("warm_starts", 1);
                inner.bump("warm_start_chunks", *chunks);
                inner.bump("spill_bytes_read", *bytes);
                inner.virt("warm_start", virtual_ms * 1000.0);
            }
            Event::SpillCorrupt { .. } => inner.bump("spill_corruptions", 1),
            Event::SpillQuarantine { bytes, .. } => {
                inner.bump("spill_quarantines", 1);
                inner.bump("spill_bytes_quarantined", *bytes);
            }
            Event::IndexRebuild {
                scanned,
                recovered,
                quarantined,
            } => {
                inner.bump("index_rebuilds", 1);
                inner.bump("index_rebuild_scanned", *scanned);
                inner.bump("index_rebuild_recovered", *recovered);
                inner.bump("index_rebuild_quarantined", *quarantined);
            }
            Event::ScrubPass {
                scanned,
                corrupt,
                virtual_ms,
                ..
            } => {
                inner.bump("scrub_passes", 1);
                inner.bump("scrub_scanned", *scanned);
                inner.bump("scrub_corrupt", *corrupt);
                inner.virt("scrub_pass", virtual_ms * 1000.0);
            }
            Event::GroupBoost { .. } => inner.bump("group_boosts", 1),
            Event::CountUpdate { writes, .. } => {
                inner.bump("count_updates", 1);
                inner.bump("count_update_writes", *writes);
            }
            Event::CostUpdate { writes, .. } => {
                inner.bump("cost_updates", 1);
                inner.bump("cost_update_writes", *writes);
            }
            Event::ShardAgg { wall_ns, .. } => {
                inner.bump("shard_aggs", 1);
                inner.wall("shard_agg", *wall_ns);
            }
            Event::RemoteServe {
                bytes, virtual_ms, ..
            } => {
                inner.bump("remote_serves", 1);
                inner.bump("bytes_on_wire", *bytes);
                inner.virt("remote_serve", virtual_ms * 1000.0);
            }
            Event::Handoff { bytes, .. } => {
                inner.bump("handoffs", 1);
                inner.bump("bytes_on_wire", *bytes);
            }
            Event::DeltaIngest {
                inserts,
                deletes,
                unmatched,
                patched,
                invalidated,
                table_writes,
                virtual_ms,
                ..
            } => {
                inner.bump("delta_ingests", 1);
                inner.bump("delta_inserts", *inserts);
                inner.bump("delta_deletes", *deletes);
                inner.bump("delta_unmatched", *unmatched);
                inner.bump("delta_chunks_patched", *patched);
                inner.bump("delta_chunks_invalidated", *invalidated);
                inner.bump("delta_table_writes", *table_writes);
                inner.virt("delta_ingest", virtual_ms * 1000.0);
            }
            Event::ChunkPatch { cells, tuples, .. } => {
                inner.bump("chunk_patches", 1);
                inner.bump("chunk_patch_cells", *cells);
                inner.bump("chunk_patch_tuples", *tuples);
            }
            Event::ChunkInvalidate { .. } => inner.bump("chunk_invalidates", 1),
            Event::NodeDown { .. } => inner.bump("node_downs", 1),
            Event::NodeUp { .. } => inner.bump("node_ups", 1),
            Event::QueryDone {
                tenant,
                gb,
                complete_hit,
                chunks_hit,
                chunks_computed,
                chunks_missed,
                chunks_demoted,
                chunks_degraded,
                tuples_aggregated,
                backend_tuples,
                lookup_nodes,
                table_writes,
                backend_virtual_ms,
                agg_virtual_ms,
                lookup_virtual_ms,
                update_virtual_ms,
                total_virtual_ms,
                probe_ns,
                apply_ns,
                agg_ns,
                lookup_ns,
                update_ns,
                ..
            } => {
                inner.bump("queries", 1);
                let s = inner.levels.entry(*gb).or_default();
                s.queries += 1;
                s.complete_hits += u64::from(*complete_hit);
                s.chunks_hit += chunks_hit;
                s.chunks_computed += chunks_computed;
                s.chunks_missed += chunks_missed;
                s.chunks_demoted += chunks_demoted;
                s.tuples_aggregated += tuples_aggregated;
                s.backend_tuples += backend_tuples;
                s.lookup_nodes += lookup_nodes;
                s.table_writes += table_writes;
                s.backend_virtual_ms += backend_virtual_ms;
                s.agg_virtual_ms += agg_virtual_ms;
                s.lookup_virtual_ms += lookup_virtual_ms;
                s.update_virtual_ms += update_virtual_ms;
                let t = inner.tenants.entry(*tenant).or_default();
                t.queries += 1;
                t.complete_hits += u64::from(*complete_hit);
                t.chunks_hit += chunks_hit;
                t.chunks_computed += chunks_computed;
                t.chunks_missed += chunks_missed;
                t.chunks_degraded += chunks_degraded;
                t.degraded_queries += u64::from(*chunks_degraded > 0);
                t.total_virtual_ms += total_virtual_ms;
                t.latency_virtual_us.record(total_virtual_ms * 1000.0);
                inner.virt("query_total", total_virtual_ms * 1000.0);
                inner.wall("query_probe", *probe_ns);
                inner.wall("query_apply", *apply_ns);
                inner.wall("query_agg", *agg_ns);
                inner.wall("query_lookup", *lookup_ns);
                inner.wall("query_update", *update_ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn query_done(gb: u32, hit: bool) -> Event {
        query_done_for(0, gb, hit)
    }

    fn query_done_for(tenant: u32, gb: u32, hit: bool) -> Event {
        Event::QueryDone {
            query: 1,
            tenant,
            gb,
            complete_hit: hit,
            chunks_hit: 2,
            chunks_computed: 1,
            chunks_missed: u64::from(!hit),
            chunks_demoted: 0,
            chunks_degraded: 0,
            tuples_aggregated: 100,
            backend_tuples: 50,
            lookup_nodes: 7,
            table_writes: 3,
            backend_virtual_ms: 10.0,
            agg_virtual_ms: 0.05,
            lookup_virtual_ms: 0.0014,
            update_virtual_ms: 0.003,
            total_virtual_ms: 10.0544,
            probe_ns: 1000,
            apply_ns: 5000,
            agg_ns: 2000,
            lookup_ns: 900,
            update_ns: 100,
        }
    }

    #[test]
    fn aggregates_per_level() {
        let r = MetricsRegistry::new();
        r.emit(&query_done(3, true));
        r.emit(&query_done(3, false));
        r.emit(&query_done(5, true));
        let levels = r.levels();
        assert_eq!(levels.len(), 2);
        let l3 = &levels[&3];
        assert_eq!(l3.queries, 2);
        assert_eq!(l3.complete_hits, 1);
        assert_eq!(l3.chunks_hit, 4);
        assert_eq!(l3.tuples_aggregated, 200);
        assert!((l3.backend_virtual_ms - 20.0).abs() < 1e-12);
        assert_eq!(r.counter("queries"), 3);
        assert_eq!(r.counter("events"), 3);
    }

    #[test]
    fn aggregates_per_tenant() {
        let r = MetricsRegistry::new();
        r.emit(&query_done_for(0, 3, true));
        r.emit(&query_done_for(1, 3, false));
        r.emit(&query_done_for(1, 5, true));
        let mut degraded = query_done_for(1, 5, false);
        if let Event::QueryDone {
            chunks_degraded, ..
        } = &mut degraded
        {
            *chunks_degraded = 2;
        }
        r.emit(&degraded);
        {
            let tenants = r.tenants_view();
            assert_eq!(tenants.len(), 2);
            let t0 = tenants.get(0).expect("tenant 0 present");
            let t1 = tenants.get(1).expect("tenant 1 present");
            assert_eq!(t0.queries, 1);
            assert_eq!(t0.complete_hits, 1);
            assert_eq!(t1.queries, 3);
            assert_eq!(t1.chunks_degraded, 2);
            assert_eq!(t1.degraded_queries, 1);
            assert_eq!(t1.latency_virtual_us.count(), 3);
            assert!((t0.complete_hit_ratio() - 1.0).abs() < 1e-12);
            // Per-tenant queries sum to the session total. (The view holds
            // the registry lock, so the counter check waits for the drop.)
            let total: u64 = tenants.iter().map(|(_, t)| t.queries).sum();
            assert_eq!(total, 4);
        }
        assert_eq!(r.counter("queries"), 4);
        // Tenant rows appear in JSON and CSV exports.
        let json = r.to_json();
        let v = JsonValue::parse(&json).expect("valid JSON");
        let rows = v.get("tenants").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("tenant").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(
            rows[1].get("chunks_degraded").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        let csv = r.tenants_to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,1,1,"));
    }

    #[test]
    fn wall_and_virtual_namespaces_stay_separate() {
        let r = MetricsRegistry::new();
        r.emit(&query_done(0, true));
        r.emit(&Event::BackendFetch {
            gb: 0,
            chunks: 2,
            tuples_scanned: 10,
            result_tuples: 4,
            virtual_ms: 300.0,
        });
        // Virtual namespace has virtual entries only; wall has wall only.
        assert!(r.virtual_histogram("backend_fetch").is_some());
        assert!(r.virtual_histogram("query_total").is_some());
        assert!(r.wall_histogram("backend_fetch").is_none());
        assert!(r.wall_histogram("query_total").is_none());
        assert!(r.wall_histogram("query_probe").is_some());
        assert!(r.virtual_histogram("query_probe").is_none());
        // 300 ms = 300_000 µs.
        let h = r.virtual_histogram("backend_fetch").unwrap();
        assert_eq!(h.sum(), 300_000.0);
    }

    #[test]
    fn json_export_round_trips() {
        let r = MetricsRegistry::new();
        r.emit(&query_done(2, true));
        r.emit(&Event::ChunkLookup {
            query: 1,
            gb: 2,
            chunk: 0,
            outcome: LookupOutcome::Hit,
            nodes: 1,
        });
        let json = r.to_json();
        let v = JsonValue::parse(&json).expect("valid JSON");
        let counters = v.get("counters").unwrap();
        assert_eq!(
            counters.get("queries").and_then(JsonValue::as_f64),
            Some(1.0)
        );
        assert_eq!(
            counters.get("lookup_hit").and_then(JsonValue::as_f64),
            Some(1.0)
        );
        let levels = v.get("levels").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].get("gb").and_then(JsonValue::as_f64), Some(2.0));
        assert_eq!(
            levels[0]
                .get("backend_virtual_ms")
                .and_then(JsonValue::as_f64),
            Some(10.0)
        );
        assert!(v.get("wall_ns").unwrap().get("query_probe").is_some());
        assert!(v.get("virtual_us").unwrap().get("query_total").is_some());
    }

    #[test]
    fn csv_export_has_one_row_per_level() {
        let r = MetricsRegistry::new();
        r.emit(&query_done(1, true));
        r.emit(&query_done(4, false));
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("gb,queries,complete_hits"));
        assert!(lines[1].starts_with("1,1,1,"));
        assert!(lines[2].starts_with("4,1,0,"));
    }

    #[test]
    fn tenants_view_exposes_per_tenant_stats() {
        let r = MetricsRegistry::new();
        r.emit(&query_done_for(0, 1, true));
        r.emit(&query_done_for(3, 1, false));
        r.emit(&query_done_for(3, 2, true));
        let view = r.tenants_view();
        assert_eq!(view.len(), 2);
        assert!(!view.is_empty());
        let t0 = view.get(0).expect("tenant 0 present");
        assert_eq!(t0.queries, 1);
        assert_eq!(t0.complete_hits, 1);
        assert_eq!(t0.latency_virtual_us.count(), 1);
        let t3 = view.get(3).expect("tenant 3 present");
        assert_eq!(t3.queries, 2);
        assert_eq!(t3.complete_hits, 1);
        assert_eq!(t3.latency_virtual_us.count(), 2);
        let ids: Vec<u32> = view.iter().map(|(t, _)| t).collect();
        assert_eq!(ids, vec![0, 3]);
        assert!(view.get(7).is_none());
    }

    #[test]
    fn recovery_events_aggregate() {
        let r = MetricsRegistry::new();
        r.emit(&Event::SpillCorrupt {
            gb: 2,
            chunk: 9,
            reason: "bad_checksum",
        });
        r.emit(&Event::SpillQuarantine {
            gb: 2,
            chunk: 9,
            bytes: 96,
        });
        r.emit(&Event::IndexRebuild {
            scanned: 5,
            recovered: 4,
            quarantined: 1,
        });
        r.emit(&Event::ScrubPass {
            scanned: 4,
            corrupt: 1,
            quarantined: 1,
            virtual_ms: 2.5,
        });
        assert_eq!(r.counter("spill_corruptions"), 1);
        assert_eq!(r.counter("spill_quarantines"), 1);
        assert_eq!(r.counter("spill_bytes_quarantined"), 96);
        assert_eq!(r.counter("index_rebuilds"), 1);
        assert_eq!(r.counter("index_rebuild_scanned"), 5);
        assert_eq!(r.counter("index_rebuild_recovered"), 4);
        assert_eq!(r.counter("index_rebuild_quarantined"), 1);
        assert_eq!(r.counter("scrub_passes"), 1);
        assert_eq!(r.counter("scrub_scanned"), 4);
        assert_eq!(r.counter("scrub_corrupt"), 1);
        // 2.5 ms = 2500 µs.
        let h = r.virtual_histogram("scrub_pass").unwrap();
        assert_eq!(h.sum(), 2500.0);
    }

    #[test]
    fn delta_events_aggregate() {
        let r = MetricsRegistry::new();
        r.emit(&Event::DeltaIngest {
            inserts: 5,
            deletes: 2,
            unmatched: 1,
            base_chunks: 3,
            patched: 4,
            invalidated: 2,
            table_writes: 6,
            virtual_ms: 1.5,
        });
        r.emit(&Event::ChunkPatch {
            gb: 1,
            chunk: 0,
            cells: 3,
            tuples: 7,
        });
        r.emit(&Event::ChunkInvalidate {
            gb: 1,
            chunk: 2,
            reason: "min_max",
        });
        assert_eq!(r.counter("delta_ingests"), 1);
        assert_eq!(r.counter("delta_inserts"), 5);
        assert_eq!(r.counter("delta_deletes"), 2);
        assert_eq!(r.counter("delta_unmatched"), 1);
        assert_eq!(r.counter("delta_chunks_patched"), 4);
        assert_eq!(r.counter("delta_chunks_invalidated"), 2);
        assert_eq!(r.counter("delta_table_writes"), 6);
        assert_eq!(r.counter("chunk_patches"), 1);
        assert_eq!(r.counter("chunk_patch_cells"), 3);
        assert_eq!(r.counter("chunk_patch_tuples"), 7);
        assert_eq!(r.counter("chunk_invalidates"), 1);
        // 1.5 ms = 1500 µs.
        let h = r.virtual_histogram("delta_ingest").unwrap();
        assert_eq!(h.sum(), 1500.0);
    }

    #[test]
    fn cluster_events_aggregate() {
        let r = MetricsRegistry::new();
        r.emit(&Event::RemoteServe {
            gb: 1,
            chunk: 3,
            from_node: 2,
            to_node: 0,
            bytes: 400,
            virtual_ms: 1.5,
        });
        r.emit(&Event::Handoff {
            gb: 1,
            chunk: 4,
            from_node: 0,
            to_node: 2,
            bytes: 100,
        });
        r.emit(&Event::NodeDown { node: 1 });
        r.emit(&Event::NodeUp { node: 1 });
        assert_eq!(r.counter("remote_serves"), 1);
        assert_eq!(r.counter("handoffs"), 1);
        assert_eq!(r.counter("bytes_on_wire"), 500);
        assert_eq!(r.counter("node_downs"), 1);
        assert_eq!(r.counter("node_ups"), 1);
        assert_eq!(r.counter("events"), 4);
        let h = r.virtual_histogram("remote_serve").unwrap();
        assert_eq!(h.sum(), 1500.0);
    }

    /// Perf probe for the borrowed per-tenant view: run with
    /// `cargo test -p aggcache-obs --release -- --ignored --nocapture`
    /// (numbers go in EXPERIMENTS.md).
    #[test]
    #[ignore = "perf probe; run manually with --release --nocapture"]
    fn tenants_view_perf_probe() {
        use std::time::Instant;
        let r = MetricsRegistry::new();
        for tenant in 0..16 {
            for _ in 0..64 {
                r.emit(&query_done_for(tenant, 1, true));
            }
        }
        const CALLS: usize = 100_000;
        let t = Instant::now();
        let mut acc = 0u64;
        for _ in 0..CALLS {
            acc += r.tenants_view().iter().map(|(_, s)| s.queries).sum::<u64>();
        }
        let viewed = t.elapsed();
        assert_eq!(acc % 2, 0);
        println!("tenants_view(): {:?} / {CALLS} calls", viewed);
    }
}
