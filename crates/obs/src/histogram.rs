/// Number of log2 buckets: bucket 0 holds values `< 1`, bucket `i` holds
/// `[2^(i-1), 2^i)`, and the last bucket absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-size log2 latency histogram.
///
/// Values are unitless here; the [`crate::MetricsRegistry`] keeps separate
/// histogram namespaces for wall-clock nanoseconds and virtual
/// microseconds so the two time domains never share a histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value falls into: 0 for `v < 1`, otherwise
    /// `floor(log2 v) + 1`, clamped to the last bucket.
    pub fn bucket_index(v: f64) -> usize {
        if v.is_nan() || v < 1.0 {
            // Negative, sub-1 and NaN all land in bucket 0.
            return 0;
        }
        let truncated = if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        };
        ((64 - truncated.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            (2u128 << (i - 1).min(127)) as f64 / 2.0
        }
    }

    /// The exclusive upper bound of bucket `i` (the last bucket is
    /// unbounded in practice).
    pub fn bucket_hi(i: usize) -> f64 {
        (1u128 << i.min(127)) as f64
    }

    /// Records one value. Non-finite values count in bucket 0 but are
    /// excluded from sum/min/max.
    pub fn record(&mut self, v: f64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded (finite) values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.min.is_finite()).then_some(self.min)
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.max.is_finite()).then_some(self.max)
    }

    /// Mean of recorded values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Upper bound of the bucket containing the `q`-quantile (tail-latency
    /// estimate: the log2 bucket resolution bounds the error to 2×).
    /// `None` when empty; `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_hi(i));
            }
        }
        Some(Self::bucket_hi(HISTOGRAM_BUCKETS - 1))
    }

    /// Iterates over non-empty buckets as `(lo, hi, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lo(i), Self::bucket_hi(i), c))
    }

    /// Serializes as a JSON object into `out`.
    pub fn write_json(&self, out: &mut String) {
        use crate::json::push_f64;
        out.push_str("{\"count\":");
        out.push_str(&self.count.to_string());
        out.push_str(",\"sum\":");
        push_f64(out, self.sum);
        out.push_str(",\"min\":");
        match self.min() {
            Some(v) => push_f64(out, v),
            None => out.push_str("null"),
        }
        out.push_str(",\"max\":");
        match self.max() {
            Some(v) => push_f64(out, v),
            None => out.push_str("null"),
        }
        out.push_str(",\"buckets\":[");
        for (i, (lo, hi, c)) in self.nonzero_buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            push_f64(out, lo);
            out.push(',');
            push_f64(out, hi);
            out.push(',');
            out.push_str(&c.to_string());
            out.push(']');
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(0.5), 0);
        assert_eq!(Histogram::bucket_index(0.999), 0);
        assert_eq!(Histogram::bucket_index(1.0), 1);
        assert_eq!(Histogram::bucket_index(1.999), 1);
        assert_eq!(Histogram::bucket_index(2.0), 2);
        assert_eq!(Histogram::bucket_index(3.999), 2);
        assert_eq!(Histogram::bucket_index(4.0), 3);
        assert_eq!(Histogram::bucket_index(1024.0), 11);
        assert_eq!(Histogram::bucket_index(-5.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        assert_eq!(Histogram::bucket_index(f64::INFINITY), 63);
        assert_eq!(Histogram::bucket_index(1e300), 63);
    }

    #[test]
    fn bucket_bounds_bracket_their_index() {
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let lo = Histogram::bucket_lo(i);
            let hi = Histogram::bucket_hi(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(Histogram::bucket_index(hi), i + 1, "hi of bucket {i}");
            assert_eq!(hi, lo * 2.0);
        }
        assert_eq!(Histogram::bucket_lo(0), 0.0);
        assert_eq!(Histogram::bucket_hi(0), 1.0);
    }

    #[test]
    fn record_accumulates_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        for v in [1.0, 2.0, 3.0, 1000.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1006.0);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(1000.0));
        assert_eq!(h.mean(), Some(251.5));
        assert_eq!(h.buckets()[1], 1); // 1.0
        assert_eq!(h.buckets()[2], 2); // 2.0, 3.0
        assert_eq!(h.buckets()[10], 1); // 1000.0 in [512, 1024)
    }

    #[test]
    fn quantile_walks_bucket_bounds() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.99), None);
        for _ in 0..99 {
            h.record(3.0); // bucket 2: [2, 4)
        }
        h.record(1000.0); // bucket 10: [512, 1024)
        assert_eq!(h.quantile(0.5), Some(4.0));
        assert_eq!(h.quantile(0.99), Some(4.0));
        assert_eq!(h.quantile(1.0), Some(1024.0));
        assert_eq!(h.quantile(0.0), Some(4.0), "q=0 is the first value");
    }

    #[test]
    fn non_finite_values_do_not_poison_stats() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(2.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 2.0);
        assert_eq!(h.min(), Some(2.0));
    }
}
