//! Typed trace events emitted by the cache manager, chunk cache, backend
//! and the parallel aggregation kernel.
//!
//! Events carry only primitive fields (`u32` group-by ids, `u64` chunk
//! numbers, `&'static str` names) so this crate sits below every other
//! crate in the dependency graph: the cache and store layers can emit
//! events without depending on the core types.
//!
//! **Virtual vs. wall time.** Fields named `*_ns` are measured wall-clock
//! nanoseconds; fields named `*_virtual_ms` are deterministic virtual
//! milliseconds from the cost model. The two are never mixed in one field,
//! and [`crate::MetricsRegistry`] keeps them in separate namespaces.

/// How one chunk lookup resolved (paper §3–§5: hit / computable / miss).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The exact chunk was cached.
    Hit,
    /// Computable by aggregating other cached chunks.
    Computable,
    /// Not answerable from the cache.
    Miss,
}

impl LookupOutcome {
    /// Stable lowercase name (used by the JSON export).
    pub fn name(self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Computable => "computable",
            Self::Miss => "miss",
        }
    }
}

/// The replacement tier a chunk belongs to — the paper's two benefit
/// classes (§6.1): fetched from the backend vs. computed in the cache,
/// plus the persistence tier's third class for chunks promoted from disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Fetched from the backend (expensive to reproduce).
    Fetched,
    /// Computed by aggregating cached chunks (cheap to reproduce).
    Computed,
    /// Promoted from the disk spill tier (cheapest to reproduce — the
    /// bytes are still on disk). Absent unless a spill tier is attached.
    Spilled,
}

impl Tier {
    /// Stable lowercase name (used by the JSON export).
    pub fn name(self) -> &'static str {
        match self {
            Self::Fetched => "fetched",
            Self::Computed => "computed",
            Self::Spilled => "spilled",
        }
    }
}

/// One structured trace event.
///
/// `query` fields carry a per-manager monotonically increasing probe id so
/// concurrent probes interleaved in the event stream can be re-associated.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A query probe began.
    ProbeStart {
        /// Probe id (correlates the probe's events).
        query: u64,
        /// Group-by id of the query.
        gb: u32,
        /// Number of chunks the query touches.
        chunks: u64,
        /// Cache version the probe runs against.
        version: u64,
        /// Lookup strategy name.
        strategy: &'static str,
    },
    /// One chunk lookup resolved during a probe.
    ChunkLookup {
        /// Probe id.
        query: u64,
        /// Group-by id of the chunk.
        gb: u32,
        /// Chunk number.
        chunk: u64,
        /// Hit / computable / miss.
        outcome: LookupOutcome,
        /// Lattice nodes visited by this lookup.
        nodes: u64,
    },
    /// A query probe finished.
    ProbeEnd {
        /// Probe id.
        query: u64,
        /// Group-by id of the query.
        gb: u32,
        /// Cache version the probe ran against.
        version: u64,
        /// Direct hits.
        hits: u64,
        /// Chunks computable by in-cache aggregation.
        computable: u64,
        /// Chunks missing (backend fetches).
        missing: u64,
        /// Computable chunks demoted to backend fetches by the §5.2
        /// cost-based arbitration.
        demoted: u64,
        /// Wall-clock nanoseconds of the whole probe.
        wall_ns: u64,
    },
    /// A computation plan was executed for a computable chunk.
    PlanChosen {
        /// Probe id of the probe that produced the plan.
        query: u64,
        /// Group-by id of the target chunk.
        gb: u32,
        /// Target chunk number.
        chunk: u64,
        /// Number of leaf chunks aggregated.
        leaves: u64,
        /// Distinct group-by ids of the plan's leaves (the aggregation
        /// path's source levels).
        levels: Vec<u32>,
        /// Tuples the lookup predicted the plan would aggregate.
        predicted_tuples: u64,
        /// Tuples actually aggregated.
        actual_tuples: u64,
    },
    /// A retrying backend decorator scheduled a re-attempt after a
    /// transient fetch failure, charging the backoff delay to virtual time.
    FetchRetry {
        /// Group-by id of the failed fetch.
        gb: u32,
        /// Chunks the fetch requested.
        chunks: u64,
        /// 1-based attempt number that just failed.
        attempt: u32,
        /// Virtual milliseconds of backoff charged before the next attempt.
        backoff_virtual_ms: f64,
        /// Stable name of the error class that triggered the retry
        /// (`"transient"` or `"timeout"`).
        error: &'static str,
    },
    /// A backend fetch attempt exceeded its per-fetch timeout budget.
    FetchTimeout {
        /// Group-by id of the timed-out fetch.
        gb: u32,
        /// Chunks the fetch requested.
        chunks: u64,
        /// Virtual milliseconds charged for the timed-out attempt.
        virtual_ms: f64,
    },
    /// A backend fetch failed permanently (retries exhausted, or no retry
    /// decorator installed): the serving layer must degrade or error.
    FetchFailed {
        /// Group-by id of the failed fetch.
        gb: u32,
        /// Chunks the fetch requested.
        chunks: u64,
        /// Attempts made before giving up (1 when nothing retried).
        attempts: u32,
        /// Total virtual milliseconds wasted on the failed attempts,
        /// including backoff delays.
        virtual_ms: f64,
    },
    /// A chunk whose backend fetch failed was answered from the cache by
    /// an aggregation path instead (graceful degradation, VCM fallback).
    DegradedServe {
        /// Group-by id of the served chunk.
        gb: u32,
        /// Chunk number served.
        chunk: u64,
        /// Cached leaf chunks aggregated to produce the answer.
        leaves: u64,
        /// Tuples aggregated.
        tuples: u64,
    },
    /// The backend executed one batched fetch.
    BackendFetch {
        /// Group-by id fetched.
        gb: u32,
        /// Chunks requested.
        chunks: u64,
        /// Source tuples scanned.
        tuples_scanned: u64,
        /// Result tuples produced.
        result_tuples: u64,
        /// Virtual milliseconds charged by the cost model.
        virtual_ms: f64,
    },
    /// A chunk was offered to the cache.
    CacheInsert {
        /// Group-by id.
        gb: u32,
        /// Chunk number.
        chunk: u64,
        /// Replacement tier.
        tier: Tier,
        /// Accounting bytes.
        bytes: u64,
        /// Whether the chunk was admitted.
        admitted: bool,
    },
    /// The replacement policy evicted a chunk.
    Evict {
        /// Group-by id of the victim.
        gb: u32,
        /// Chunk number of the victim.
        chunk: u64,
        /// Tier the victim lived in (two-level policy: computed chunks
        /// fall first).
        tier: Tier,
        /// Completed sweep rounds of the CLOCK ring the victim came from.
        clock_round: u64,
        /// Residual clock weight at eviction (includes group boosts).
        clock: f64,
    },
    /// The two-level policy boosted a group of chunks that together
    /// computed an aggregate (§6.3 rule 2).
    GroupBoost {
        /// Chunks in the boosted group.
        chunks: u64,
        /// Normalized clock amount added to each chunk.
        amount: f64,
    },
    /// The VCM count table absorbed an insert or evict.
    CountUpdate {
        /// Group-by id of the inserted/evicted chunk.
        gb: u32,
        /// Chunk number.
        chunk: u64,
        /// Table cells written by this delta.
        writes: u64,
        /// `true` for an eviction, `false` for an insert.
        evict: bool,
    },
    /// The VCMC cost table absorbed an insert or evict.
    CostUpdate {
        /// Group-by id of the inserted/evicted chunk.
        gb: u32,
        /// Chunk number.
        chunk: u64,
        /// Table cells written by this delta.
        writes: u64,
        /// `true` for an eviction, `false` for an insert.
        evict: bool,
    },
    /// One worker of the parallel aggregation kernel finished its share.
    ShardAgg {
        /// Exchange phase: 0 = partition (roll-up + encode), 1 = reduce.
        phase: u8,
        /// Worker/shard index.
        shard: u32,
        /// Total workers/shards.
        shards: u32,
        /// Cells this worker processed.
        cells: u64,
        /// Wall-clock nanoseconds this worker ran.
        wall_ns: u64,
    },
    /// A cluster peer answered a chunk that missed on its owner node: the
    /// peer computed it from its own cache and shipped the cells over the
    /// simulated network (cooperative lookup).
    RemoteServe {
        /// Group-by id of the served chunk.
        gb: u32,
        /// Chunk number served.
        chunk: u64,
        /// Node that answered.
        from_node: u32,
        /// Owner node that received (and admitted) the cells.
        to_node: u32,
        /// Payload bytes shipped.
        bytes: u64,
        /// Virtual milliseconds charged by the message-cost model.
        virtual_ms: f64,
    },
    /// A ring membership change moved a resident chunk to its new owner
    /// (key-slice handoff during rebalancing).
    Handoff {
        /// Group-by id of the moved chunk.
        gb: u32,
        /// Chunk number moved.
        chunk: u64,
        /// Node that gave the chunk up.
        from_node: u32,
        /// New owner node.
        to_node: u32,
        /// Payload bytes shipped.
        bytes: u64,
    },
    /// An evicted chunk was demoted to the disk spill tier instead of
    /// being dropped.
    SpillWrite {
        /// Group-by id of the demoted chunk.
        gb: u32,
        /// Chunk number demoted.
        chunk: u64,
        /// Serialized bytes written.
        bytes: u64,
        /// Virtual milliseconds charged by the spill cost model.
        virtual_ms: f64,
    },
    /// A spilled chunk was read back from disk to answer a query miss.
    SpillRead {
        /// Group-by id of the chunk read.
        gb: u32,
        /// Chunk number read.
        chunk: u64,
        /// Serialized bytes read.
        bytes: u64,
        /// Virtual milliseconds charged by the spill cost model.
        virtual_ms: f64,
    },
    /// A chunk read from the spill tier was offered back to the RAM cache
    /// (the promotion following a [`Event::SpillRead`]).
    SpillPromote {
        /// Group-by id of the promoted chunk.
        gb: u32,
        /// Chunk number promoted.
        chunk: u64,
        /// Whether the RAM cache admitted it (a refused promotion still
        /// answers the query from the read bytes).
        admitted: bool,
    },
    /// A restarted cache manager rebuilt its RAM population from the spill
    /// tier's checkpoint.
    WarmStart {
        /// Chunks re-admitted from the checkpoint.
        chunks: u64,
        /// Serialized bytes read from disk.
        bytes: u64,
        /// Virtual milliseconds charged for the recovery reads.
        virtual_ms: f64,
    },
    /// A spill-tier record failed its integrity checks (bad magic,
    /// version, checksum or structure) when read back from disk.
    SpillCorrupt {
        /// Group-by id of the damaged chunk.
        gb: u32,
        /// Chunk number of the damaged chunk.
        chunk: u64,
        /// Stable error-class name (e.g. `bad_checksum`).
        reason: &'static str,
    },
    /// A corrupt spill record was quarantined: dropped from the index and
    /// its file set aside, so the chunk re-enters the normal miss path.
    SpillQuarantine {
        /// Group-by id of the quarantined chunk.
        gb: u32,
        /// Chunk number of the quarantined chunk.
        chunk: u64,
        /// On-disk bytes the record occupied.
        bytes: u64,
    },
    /// A missing/truncated/corrupt spill index was rebuilt by scanning the
    /// data files (index scavenge).
    IndexRebuild {
        /// Chunk files scanned.
        scanned: u64,
        /// Records recovered into the rebuilt index.
        recovered: u64,
        /// Damaged/misnamed files quarantined during the scan.
        quarantined: u64,
    },
    /// A proactive scrub pass verified the checksums of every indexed
    /// spill record.
    ScrubPass {
        /// Records scanned.
        scanned: u64,
        /// Records found corrupt.
        corrupt: u64,
        /// Records quarantined.
        quarantined: u64,
        /// Virtual milliseconds charged to the spill cost model.
        virtual_ms: f64,
    },
    /// A delta batch of base-data inserts/deletes was ingested and its
    /// effects propagated up the lattice to resident chunks.
    DeltaIngest {
        /// Fact tuples inserted.
        inserts: u64,
        /// Fact tuples removed by matched deletes.
        deletes: u64,
        /// Deletes that matched no fact tuple.
        unmatched: u64,
        /// Distinct base chunks the effective delta landed in.
        base_chunks: u64,
        /// Resident chunks patched in place.
        patched: u64,
        /// Resident chunks invalidated.
        invalidated: u64,
        /// Count/cost table cells written during maintenance.
        table_writes: u64,
        /// Virtual milliseconds charged for the whole ingestion.
        virtual_ms: f64,
    },
    /// A resident chunk absorbed a delta in place through the roll-up
    /// kernel (self-maintainable aggregate).
    ChunkPatch {
        /// Group-by id of the patched chunk.
        gb: u32,
        /// Chunk number patched.
        chunk: u64,
        /// Delta cells folded into the chunk.
        cells: u64,
        /// Delta tuples rolled up to produce those cells.
        tuples: u64,
    },
    /// A resident chunk affected by a delta could not be patched in place
    /// and was evicted to re-serve through the normal miss path.
    ChunkInvalidate {
        /// Group-by id of the invalidated chunk.
        gb: u32,
        /// Chunk number invalidated.
        chunk: u64,
        /// Stable reason name: `"min_max"` (non-self-maintainable
        /// aggregate), `"sum_delete"` (SUM chunk hit by deletes),
        /// `"emptied"` (every cell's tuple count reached zero),
        /// `"refused"` (patched data refused re-admission) or
        /// `"spilled"` (stale on-disk copy removed).
        reason: &'static str,
    },
    /// A cluster node went down (its cache contents are lost).
    NodeDown {
        /// The failed node.
        node: u32,
    },
    /// A cluster node came back up (cold cache).
    NodeUp {
        /// The revived node.
        node: u32,
    },
    /// A query finished end to end (probe + apply).
    QueryDone {
        /// Probe id of the probe that produced the answer.
        query: u64,
        /// Tenant that issued the query (0 for single-tenant sessions).
        tenant: u32,
        /// Group-by id of the query.
        gb: u32,
        /// Answered entirely from the cache.
        complete_hit: bool,
        /// Chunks answered directly.
        chunks_hit: u64,
        /// Chunks computed by aggregation.
        chunks_computed: u64,
        /// Chunks fetched from the backend.
        chunks_missed: u64,
        /// Chunks demoted by the cost-based optimizer.
        chunks_demoted: u64,
        /// Chunks served degraded (backend fetch failed, answered from
        /// cached aggregates instead).
        chunks_degraded: u64,
        /// Tuples aggregated in cache.
        tuples_aggregated: u64,
        /// Base tuples scanned by the backend.
        backend_tuples: u64,
        /// Lattice nodes visited by lookups.
        lookup_nodes: u64,
        /// Count/cost table cells written.
        table_writes: u64,
        /// Virtual backend milliseconds.
        backend_virtual_ms: f64,
        /// Virtual aggregation milliseconds.
        agg_virtual_ms: f64,
        /// Virtual lookup milliseconds.
        lookup_virtual_ms: f64,
        /// Virtual table-update milliseconds.
        update_virtual_ms: f64,
        /// Sum of the four virtual components.
        total_virtual_ms: f64,
        /// Wall-clock nanoseconds of the probe phase.
        probe_ns: u64,
        /// Wall-clock nanoseconds of the apply phase.
        apply_ns: u64,
        /// Wall-clock nanoseconds spent aggregating.
        agg_ns: u64,
        /// Wall-clock nanoseconds spent in lookups.
        lookup_ns: u64,
        /// Wall-clock nanoseconds spent maintaining tables.
        update_ns: u64,
    },
}

impl Event {
    /// Stable snake_case name of the event kind (the JSON `type` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ProbeStart { .. } => "probe_start",
            Event::ChunkLookup { .. } => "chunk_lookup",
            Event::ProbeEnd { .. } => "probe_end",
            Event::PlanChosen { .. } => "plan_chosen",
            Event::FetchRetry { .. } => "fetch_retry",
            Event::FetchTimeout { .. } => "fetch_timeout",
            Event::FetchFailed { .. } => "fetch_failed",
            Event::DegradedServe { .. } => "degraded_serve",
            Event::BackendFetch { .. } => "backend_fetch",
            Event::CacheInsert { .. } => "cache_insert",
            Event::Evict { .. } => "evict",
            Event::GroupBoost { .. } => "group_boost",
            Event::CountUpdate { .. } => "count_update",
            Event::CostUpdate { .. } => "cost_update",
            Event::ShardAgg { .. } => "shard_agg",
            Event::RemoteServe { .. } => "remote_serve",
            Event::Handoff { .. } => "handoff",
            Event::SpillWrite { .. } => "spill_write",
            Event::SpillRead { .. } => "spill_read",
            Event::SpillPromote { .. } => "spill_promote",
            Event::WarmStart { .. } => "warm_start",
            Event::SpillCorrupt { .. } => "spill_corrupt",
            Event::SpillQuarantine { .. } => "spill_quarantine",
            Event::IndexRebuild { .. } => "index_rebuild",
            Event::ScrubPass { .. } => "scrub_pass",
            Event::DeltaIngest { .. } => "delta_ingest",
            Event::ChunkPatch { .. } => "chunk_patch",
            Event::ChunkInvalidate { .. } => "chunk_invalidate",
            Event::NodeDown { .. } => "node_down",
            Event::NodeUp { .. } => "node_up",
            Event::QueryDone { .. } => "query_done",
        }
    }

    /// Serializes the event as one JSON object into `out`.
    pub fn write_json(&self, out: &mut String) {
        use crate::json::{push_f64, push_str};
        out.push_str("{\"type\":\"");
        out.push_str(self.kind());
        out.push('"');
        let field_u = |out: &mut String, k: &str, v: u64| {
            out.push(',');
            push_str(out, k);
            out.push(':');
            out.push_str(&v.to_string());
        };
        match self {
            Event::ProbeStart {
                query,
                gb,
                chunks,
                version,
                strategy,
            } => {
                field_u(out, "query", *query);
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunks", *chunks);
                field_u(out, "version", *version);
                out.push_str(",\"strategy\":");
                push_str(out, strategy);
            }
            Event::ChunkLookup {
                query,
                gb,
                chunk,
                outcome,
                nodes,
            } => {
                field_u(out, "query", *query);
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunk", *chunk);
                out.push_str(",\"outcome\":");
                push_str(out, outcome.name());
                field_u(out, "nodes", *nodes);
            }
            Event::ProbeEnd {
                query,
                gb,
                version,
                hits,
                computable,
                missing,
                demoted,
                wall_ns,
            } => {
                field_u(out, "query", *query);
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "version", *version);
                field_u(out, "hits", *hits);
                field_u(out, "computable", *computable);
                field_u(out, "missing", *missing);
                field_u(out, "demoted", *demoted);
                field_u(out, "wall_ns", *wall_ns);
            }
            Event::PlanChosen {
                query,
                gb,
                chunk,
                leaves,
                levels,
                predicted_tuples,
                actual_tuples,
            } => {
                field_u(out, "query", *query);
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunk", *chunk);
                field_u(out, "leaves", *leaves);
                out.push_str(",\"levels\":[");
                for (i, l) in levels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&l.to_string());
                }
                out.push(']');
                field_u(out, "predicted_tuples", *predicted_tuples);
                field_u(out, "actual_tuples", *actual_tuples);
            }
            Event::FetchRetry {
                gb,
                chunks,
                attempt,
                backoff_virtual_ms,
                error,
            } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunks", *chunks);
                field_u(out, "attempt", u64::from(*attempt));
                out.push_str(",\"backoff_virtual_ms\":");
                push_f64(out, *backoff_virtual_ms);
                out.push_str(",\"error\":");
                push_str(out, error);
            }
            Event::FetchTimeout {
                gb,
                chunks,
                virtual_ms,
            } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunks", *chunks);
                out.push_str(",\"virtual_ms\":");
                push_f64(out, *virtual_ms);
            }
            Event::FetchFailed {
                gb,
                chunks,
                attempts,
                virtual_ms,
            } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunks", *chunks);
                field_u(out, "attempts", u64::from(*attempts));
                out.push_str(",\"virtual_ms\":");
                push_f64(out, *virtual_ms);
            }
            Event::DegradedServe {
                gb,
                chunk,
                leaves,
                tuples,
            } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunk", *chunk);
                field_u(out, "leaves", *leaves);
                field_u(out, "tuples", *tuples);
            }
            Event::BackendFetch {
                gb,
                chunks,
                tuples_scanned,
                result_tuples,
                virtual_ms,
            } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunks", *chunks);
                field_u(out, "tuples_scanned", *tuples_scanned);
                field_u(out, "result_tuples", *result_tuples);
                out.push_str(",\"virtual_ms\":");
                push_f64(out, *virtual_ms);
            }
            Event::CacheInsert {
                gb,
                chunk,
                tier,
                bytes,
                admitted,
            } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunk", *chunk);
                out.push_str(",\"tier\":");
                push_str(out, tier.name());
                field_u(out, "bytes", *bytes);
                out.push_str(",\"admitted\":");
                out.push_str(if *admitted { "true" } else { "false" });
            }
            Event::Evict {
                gb,
                chunk,
                tier,
                clock_round,
                clock,
            } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunk", *chunk);
                out.push_str(",\"tier\":");
                push_str(out, tier.name());
                field_u(out, "clock_round", *clock_round);
                out.push_str(",\"clock\":");
                push_f64(out, *clock);
            }
            Event::GroupBoost { chunks, amount } => {
                field_u(out, "chunks", *chunks);
                out.push_str(",\"amount\":");
                push_f64(out, *amount);
            }
            Event::CountUpdate {
                gb,
                chunk,
                writes,
                evict,
            }
            | Event::CostUpdate {
                gb,
                chunk,
                writes,
                evict,
            } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunk", *chunk);
                field_u(out, "writes", *writes);
                out.push_str(",\"evict\":");
                out.push_str(if *evict { "true" } else { "false" });
            }
            Event::ShardAgg {
                phase,
                shard,
                shards,
                cells,
                wall_ns,
            } => {
                field_u(out, "phase", u64::from(*phase));
                field_u(out, "shard", u64::from(*shard));
                field_u(out, "shards", u64::from(*shards));
                field_u(out, "cells", *cells);
                field_u(out, "wall_ns", *wall_ns);
            }
            Event::RemoteServe {
                gb,
                chunk,
                from_node,
                to_node,
                bytes,
                virtual_ms,
            } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunk", *chunk);
                field_u(out, "from_node", u64::from(*from_node));
                field_u(out, "to_node", u64::from(*to_node));
                field_u(out, "bytes", *bytes);
                out.push_str(",\"virtual_ms\":");
                push_f64(out, *virtual_ms);
            }
            Event::Handoff {
                gb,
                chunk,
                from_node,
                to_node,
                bytes,
            } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunk", *chunk);
                field_u(out, "from_node", u64::from(*from_node));
                field_u(out, "to_node", u64::from(*to_node));
                field_u(out, "bytes", *bytes);
            }
            Event::SpillWrite {
                gb,
                chunk,
                bytes,
                virtual_ms,
            }
            | Event::SpillRead {
                gb,
                chunk,
                bytes,
                virtual_ms,
            } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunk", *chunk);
                field_u(out, "bytes", *bytes);
                out.push_str(",\"virtual_ms\":");
                push_f64(out, *virtual_ms);
            }
            Event::SpillPromote {
                gb,
                chunk,
                admitted,
            } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunk", *chunk);
                out.push_str(",\"admitted\":");
                out.push_str(if *admitted { "true" } else { "false" });
            }
            Event::WarmStart {
                chunks,
                bytes,
                virtual_ms,
            } => {
                field_u(out, "chunks", *chunks);
                field_u(out, "bytes", *bytes);
                out.push_str(",\"virtual_ms\":");
                push_f64(out, *virtual_ms);
            }
            Event::SpillCorrupt { gb, chunk, reason } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunk", *chunk);
                out.push_str(",\"reason\":");
                push_str(out, reason);
            }
            Event::SpillQuarantine { gb, chunk, bytes } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunk", *chunk);
                field_u(out, "bytes", *bytes);
            }
            Event::IndexRebuild {
                scanned,
                recovered,
                quarantined,
            } => {
                field_u(out, "scanned", *scanned);
                field_u(out, "recovered", *recovered);
                field_u(out, "quarantined", *quarantined);
            }
            Event::ScrubPass {
                scanned,
                corrupt,
                quarantined,
                virtual_ms,
            } => {
                field_u(out, "scanned", *scanned);
                field_u(out, "corrupt", *corrupt);
                field_u(out, "quarantined", *quarantined);
                out.push_str(",\"virtual_ms\":");
                push_f64(out, *virtual_ms);
            }
            Event::DeltaIngest {
                inserts,
                deletes,
                unmatched,
                base_chunks,
                patched,
                invalidated,
                table_writes,
                virtual_ms,
            } => {
                field_u(out, "inserts", *inserts);
                field_u(out, "deletes", *deletes);
                field_u(out, "unmatched", *unmatched);
                field_u(out, "base_chunks", *base_chunks);
                field_u(out, "patched", *patched);
                field_u(out, "invalidated", *invalidated);
                field_u(out, "table_writes", *table_writes);
                out.push_str(",\"virtual_ms\":");
                push_f64(out, *virtual_ms);
            }
            Event::ChunkPatch {
                gb,
                chunk,
                cells,
                tuples,
            } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunk", *chunk);
                field_u(out, "cells", *cells);
                field_u(out, "tuples", *tuples);
            }
            Event::ChunkInvalidate { gb, chunk, reason } => {
                field_u(out, "gb", u64::from(*gb));
                field_u(out, "chunk", *chunk);
                out.push_str(",\"reason\":");
                push_str(out, reason);
            }
            Event::NodeDown { node } => {
                field_u(out, "node", u64::from(*node));
            }
            Event::NodeUp { node } => {
                field_u(out, "node", u64::from(*node));
            }
            Event::QueryDone {
                query,
                tenant,
                gb,
                complete_hit,
                chunks_hit,
                chunks_computed,
                chunks_missed,
                chunks_demoted,
                chunks_degraded,
                tuples_aggregated,
                backend_tuples,
                lookup_nodes,
                table_writes,
                backend_virtual_ms,
                agg_virtual_ms,
                lookup_virtual_ms,
                update_virtual_ms,
                total_virtual_ms,
                probe_ns,
                apply_ns,
                agg_ns,
                lookup_ns,
                update_ns,
            } => {
                field_u(out, "query", *query);
                field_u(out, "tenant", u64::from(*tenant));
                field_u(out, "gb", u64::from(*gb));
                out.push_str(",\"complete_hit\":");
                out.push_str(if *complete_hit { "true" } else { "false" });
                field_u(out, "chunks_hit", *chunks_hit);
                field_u(out, "chunks_computed", *chunks_computed);
                field_u(out, "chunks_missed", *chunks_missed);
                field_u(out, "chunks_demoted", *chunks_demoted);
                field_u(out, "chunks_degraded", *chunks_degraded);
                field_u(out, "tuples_aggregated", *tuples_aggregated);
                field_u(out, "backend_tuples", *backend_tuples);
                field_u(out, "lookup_nodes", *lookup_nodes);
                field_u(out, "table_writes", *table_writes);
                for (k, v) in [
                    ("backend_virtual_ms", backend_virtual_ms),
                    ("agg_virtual_ms", agg_virtual_ms),
                    ("lookup_virtual_ms", lookup_virtual_ms),
                    ("update_virtual_ms", update_virtual_ms),
                    ("total_virtual_ms", total_virtual_ms),
                ] {
                    out.push(',');
                    push_str(out, k);
                    out.push(':');
                    push_f64(out, *v);
                }
                field_u(out, "probe_ns", *probe_ns);
                field_u(out, "apply_ns", *apply_ns);
                field_u(out, "agg_ns", *agg_ns);
                field_u(out, "lookup_ns", *lookup_ns);
                field_u(out, "update_ns", *update_ns);
            }
        }
        out.push('}');
    }
}
