use crate::Event;
use std::sync::{Arc, Mutex};

/// A sink for trace [`Event`]s.
///
/// Implementations must be `Send + Sync`: probes run concurrently over one
/// manager ([`CacheManager::execute_batch`]), and the parallel aggregation
/// kernel emits per-shard events from scoped worker threads.
///
/// **Zero cost when disabled.** Components hold an `Option<Arc<dyn
/// Tracer>>` and construct events only inside an `if let Some(..)` — with
/// no tracer installed the entire subsystem is one branch per site.
///
/// [`CacheManager::execute_batch`]: ../aggcache_core/struct.CacheManager.html#method.execute_batch
pub trait Tracer: Send + Sync {
    /// Consumes one event. Must not block for long: called on the query
    /// path, sometimes under concurrency.
    fn emit(&self, event: &Event);
}

/// A tracer that drops every event — for measuring the cost of the
/// emission sites themselves (event construction included, sink excluded).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn emit(&self, _event: &Event) {}
}

/// A tracer that records every event in order.
///
/// Internally a mutex-guarded vector: concurrent probes serialize on the
/// lock, which bounds overhead but still captures a totally ordered event
/// stream.
#[derive(Debug, Default)]
pub struct RecordingTracer {
    events: Mutex<Vec<Event>>,
}

impl RecordingTracer {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the recorded events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Drains and returns the recorded events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }

    /// Serializes the recorded events as a JSON array.
    pub fn to_json(&self) -> String {
        let events = self.events.lock().unwrap();
        let mut out = String::with_capacity(events.len() * 64 + 2);
        out.push('[');
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.write_json(&mut out);
        }
        out.push(']');
        out
    }
}

impl Tracer for RecordingTracer {
    fn emit(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Forwards every event to several tracers (e.g. a [`RecordingTracer`] for
/// the raw stream plus a [`crate::MetricsRegistry`] for aggregates).
#[derive(Default)]
pub struct FanoutTracer {
    sinks: Vec<Arc<dyn Tracer>>,
}

impl FanoutTracer {
    /// Creates a fanout over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn Tracer>>) -> Self {
        Self { sinks }
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: Arc<dyn Tracer>) {
        self.sinks.push(sink);
    }
}

impl Tracer for FanoutTracer {
    fn emit(&self, event: &Event) {
        for sink in &self.sinks {
            sink.emit(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event::GroupBoost {
            chunks: 3,
            amount: 1.5,
        }
    }

    #[test]
    fn recording_tracer_keeps_order() {
        let t = RecordingTracer::new();
        t.emit(&sample());
        t.emit(&Event::ProbeStart {
            query: 1,
            gb: 0,
            chunks: 2,
            version: 0,
            strategy: "vcmc",
        });
        assert_eq!(t.len(), 2);
        let events = t.events();
        assert_eq!(events[0], sample());
        assert_eq!(events[1].kind(), "probe_start");
        assert_eq!(t.take().len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(RecordingTracer::new());
        let b = Arc::new(RecordingTracer::new());
        let f = FanoutTracer::new(vec![a.clone(), b.clone()]);
        f.emit(&sample());
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn recording_tracer_is_shareable_across_threads() {
        let t = Arc::new(RecordingTracer::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        t.emit(&sample());
                    }
                });
            }
        });
        assert_eq!(t.len(), 400);
    }
}
