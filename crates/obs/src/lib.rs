//! Observability for the aggregate-aware cache: typed trace events, a
//! zero-cost-when-disabled [`Tracer`] trait, and a [`MetricsRegistry`]
//! that aggregates events into per-group-by-level counters and latency
//! histograms with JSON/CSV exporters.
//!
//! This crate sits at the bottom of the workspace dependency graph (it
//! depends on nothing), so the cache, store and core layers can all emit
//! [`Event`]s. Events therefore use primitive field types: group-bys as
//! `u32` ids, chunks as `u64` numbers.
//!
//! # Time domains
//!
//! Two clocks run through the system and are **never mixed**:
//!
//! * **Virtual time** — deterministic milliseconds charged by the cost
//!   models (backend fetch cost, per-tuple aggregation rates). Identical
//!   across runs and hardware; this is what the paper's tables/figures
//!   report. Fields: `*_virtual_ms`; registry namespace: `virtual_us`.
//! * **Wall time** — measured nanoseconds of the real implementation.
//!   Fields: `*_ns`; registry namespace: `wall_ns`.
//!
//! Tracing reads both clocks but mutates neither: enabling a tracer
//! changes no virtual-time output bit.
//!
//! # Usage
//!
//! ```
//! use aggcache_obs::{Event, MetricsRegistry, RecordingTracer, Tracer};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(RecordingTracer::new());
//! recorder.emit(&Event::GroupBoost { chunks: 2, amount: 1.0 });
//! assert_eq!(recorder.len(), 1);
//!
//! let registry = MetricsRegistry::new();
//! registry.emit(&recorder.events()[0]);
//! assert_eq!(registry.counter("group_boosts"), 1);
//! ```

#![deny(missing_docs)]

mod event;
mod histogram;
pub mod json;
mod registry;
mod tracer;

pub use event::{Event, LookupOutcome, Tier};
pub use histogram::{Histogram, HISTOGRAM_BUCKETS};
pub use registry::{LevelStats, MetricsRegistry, TenantStats, TenantsView};
pub use tracer::{FanoutTracer, NoopTracer, RecordingTracer, Tracer};
