//! A minimal, dependency-free JSON writer/parser.
//!
//! The writer half (`push_str`, `push_f64`) backs the trace exporters; the
//! parser half exists so exports can be round-trip-validated offline —
//! both in unit tests and by the `trace_check` CI binary — without pulling
//! in serde (the build environment has no registry access).

use std::fmt::Write as _;

/// Appends `s` as a JSON string literal (quoted, escaped).
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number; non-finite values become `null` (JSON has
/// no NaN/Infinity).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, JsonValue::Obj(_))
    }
}

/// A parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the source.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs (we never emit them, but
                            // accept them for robustness).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        // self.pos is at the first of four hex digits.
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("short \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse(" -1.5e3 ").unwrap(),
            JsonValue::Num(-1500.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\nb\"").unwrap(),
            JsonValue::Str("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, 2, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.0));
        assert_eq!(arr[2].get("b").and_then(JsonValue::as_bool), Some(false));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("\"open").is_err());
    }

    #[test]
    fn writer_escapes_round_trip() {
        let mut out = String::new();
        push_str(&mut out, "he said \"hi\"\n\tb\\c\u{1}");
        let parsed = JsonValue::parse(&out).unwrap();
        assert_eq!(parsed.as_str(), Some("he said \"hi\"\n\tb\\c\u{1}"));
    }

    #[test]
    fn writer_numbers_round_trip() {
        for v in [0.0, 1.0, -2.5, 0.1, 1e300, 123456789.25] {
            let mut out = String::new();
            push_f64(&mut out, v);
            assert_eq!(JsonValue::parse(&out).unwrap().as_f64(), Some(v));
        }
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            JsonValue::parse("\"\\u0041\\u00e9\"").unwrap().as_str(),
            Some("Aé")
        );
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(
            JsonValue::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("😀")
        );
        // Raw multi-byte characters pass through unescaped too.
        assert_eq!(JsonValue::parse(r#""é😀""#).unwrap().as_str(), Some("é😀"));
    }
}
