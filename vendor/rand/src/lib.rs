//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the *minimal* API surface it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed, which
//! is all the experiments and tests rely on. Value streams differ from
//! upstream `rand`, but every consumer in this workspace treats the seed
//! as an opaque reproducibility token, never as a reference stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the single constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "natural" range (`[0, 1)` for
/// floats, the full domain for integers, a fair coin for `bool`).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics when empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-domain u64 range.
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` over its natural range.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! The standard generator.

    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator (stand-in for upstream's
    /// ChaCha-based `StdRng`; this workspace only needs determinism, not
    /// cryptographic quality).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let u = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&u));
            let v = rng.gen_range(2usize..5);
            assert!((2..5).contains(&v));
            let w = rng.gen_range(0u64..17);
            assert!(w < 17);
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&heads), "{heads}");
    }
}
