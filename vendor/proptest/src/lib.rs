//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the subset of proptest it uses: composable [`strategy::Strategy`]
//! values (numeric ranges, tuples, `collection::vec`, `bool::ANY`,
//! `prop_map` / `prop_flat_map`, `prop_oneof!`) driven by a deterministic
//! runner through the [`proptest!`] macro with `prop_assert!` /
//! `prop_assert_eq!`. Failing inputs are re-generatable from the reported
//! case seed, but there is **no shrinking** — failures report the first
//! counterexample as generated.

#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// The RNG handed to strategies by the runner.
    pub type TestRng = rand::rngs::StdRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given (non-empty) alternatives.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// Exact values generate themselves (proptest's `Just`).
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: Copy,
        Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: Copy,
        RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// Marker so strategies never collide with user blanket impls.
    pub struct StrategyFor<V>(PhantomData<V>);
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy behind [`ANY`].
    pub struct Any;

    /// A fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            Self { lo, hi }
        }
    }

    /// The strategy behind [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case runner behind the [`proptest!`](crate::proptest) macro.

    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A failed case (produced by `prop_assert!`-family macros).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    /// Runs one closure over `config.cases` deterministic random cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner with the given config.
        pub fn new(config: ProptestConfig) -> Self {
            Self { config }
        }

        /// Runs every case; panics (failing the `#[test]`) on the first
        /// failing one, reporting its case seed so it can be replayed.
        pub fn run<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            for i in 0..self.config.cases {
                let seed = 0x9E37_79B9_7F4A_7C15u64 ^ u64::from(i);
                let mut rng = TestRng::seed_from_u64(seed);
                if let Err(e) = case(&mut rng) {
                    panic!("proptest: case {i} (seed {seed:#x}) failed: {}", e.message);
                }
            }
        }
    }
}

pub mod prelude {
    //! The glob-importable surface, mirroring upstream proptest's prelude.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the enclosing proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the enclosing proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?} == {:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?} == {:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

/// Fails the enclosing proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?} != {:?}`", lhs, rhs);
    }};
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(|__proptest_rng| {
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        __proptest_rng,
                    );
                )+
                let __proptest_result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __proptest_result
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u64),
        B(bool, f64),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..10).prop_map(Op::A),
            (crate::bool::ANY, 0.0f64..5.0).prop_map(|(b, f)| Op::B(b, f)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Generated values respect their strategies' bounds.
        #[test]
        fn bounds_hold(
            ops in crate::collection::vec(arb_op(), 1..20),
            n in 3usize..7,
            m in 1u8..=4,
        ) {
            prop_assert!((1..20).contains(&ops.len()));
            prop_assert!((3..7).contains(&n), "n={} escaped", n);
            prop_assert!((1..=4).contains(&m));
            for op in &ops {
                match *op {
                    Op::A(v) => prop_assert!(v < 10),
                    Op::B(_, f) => prop_assert!((0.0..5.0).contains(&f)),
                }
            }
        }

        #[test]
        fn flat_map_composes(v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..100, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(v.iter().filter(|&&x| x >= 100).count(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest: case")]
    fn failures_panic_with_case_seed() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(8));
        runner.run(|_rng| Err(crate::test_runner::TestCaseError::fail("forced")));
    }
}
