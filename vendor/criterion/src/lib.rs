//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the subset of criterion its benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `throughput`, `bench_function`
//! and `bench_with_input` (with [`BenchmarkId`]), [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! plain wall-clock mean over `sample_size` samples after a short
//! calibration pass — no outlier analysis, no plots, no saved baselines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time per measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);
/// Wall-clock budget for the calibration pass.
const CALIBRATION_TARGET: Duration = Duration::from_millis(50);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// How to express per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group: a function name, a parameter,
/// or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// A group of benchmarks sharing a name prefix and measurement settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares per-iteration throughput, reported alongside timings.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            per_iter: None,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Measures `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            per_iter: None,
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Ends the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let per_iter = bencher
            .per_iter
            .expect("benchmark closure never called Bencher::iter");
        let mut line = format!(
            "{}/{}: time: [{}/iter]",
            self.name,
            id.label,
            fmt_duration(per_iter)
        );
        if let Some(tp) = self.throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                match tp {
                    Throughput::Elements(n) => {
                        line.push_str(&format!(" thrpt: [{:.4} Melem/s]", n as f64 / secs / 1e6));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!(
                            " thrpt: [{:.4} MiB/s]",
                            n as f64 / secs / (1u64 << 20) as f64
                        ));
                    }
                }
            }
        }
        println!("{line}");
    }
}

/// Runs and times the benchmarked routine.
pub struct Bencher {
    per_iter: Option<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: calibrates an iteration count, then records the
    /// mean wall-clock time per iteration over the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: double the batch size until one batch is long enough
        // to time reliably.
        let mut batch: u64 = 1;
        let per_iter_estimate = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= CALIBRATION_TARGET || batch >= u64::MAX / 2 {
                break elapsed / batch.max(1) as u32;
            }
            batch *= 2;
        };
        let iters_per_sample = if per_iter_estimate.is_zero() {
            batch
        } else {
            (SAMPLE_TARGET.as_nanos() / per_iter_estimate.as_nanos().max(1))
                .clamp(1, u128::from(u32::MAX)) as u64
        };
        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += start.elapsed();
            total_iters += iters_per_sample;
        }
        self.per_iter = Some(if total_iters == 0 {
            Duration::ZERO
        } else {
            total / u32::try_from(total_iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        });
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", "x").label, "f/x");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }
}
