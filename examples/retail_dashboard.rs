//! A simulated interactive OLAP session on the APB-1-like retail schema —
//! the workload the paper's introduction motivates: an analyst starting at
//! a yearly overview, drilling into products and quarters, rolling back
//! up, and sliding across time. Roll-ups are where the *active* cache
//! shines: they are answered by aggregating cached detail chunks instead
//! of going back to the warehouse.
//!
//! Run with: `cargo run --release --example retail_dashboard`

use aggcache::prelude::*;

fn step(manager: &mut CacheManager, label: &str, query: &Query) {
    let r = manager.run(&(query).into()).unwrap();
    let m = r.metrics;
    let source = if m.complete_hit {
        if m.chunks_computed > 0 {
            "cache (aggregated)"
        } else {
            "cache (direct)"
        }
    } else {
        "backend"
    };
    println!(
        "{label:<42} {:>6} cells  {:>8.1} ms  from {source}",
        r.data.len(),
        m.total_ms()
    );
}

fn main() {
    println!("generating the APB-1-like dataset (~200k tuples)…");
    let dataset = Apb1Config {
        n_tuples: 200_000,
        ..Apb1Config::default()
    }
    .build();
    let grid = dataset.grid.clone();
    let lattice = grid.schema().lattice().clone();
    let backend = Backend::new(dataset.fact, AggFn::Sum, BackendCostModel::default());
    let mut manager = CacheManager::builder()
        .strategy(Strategy::Vcmc)
        .policy(PolicyKind::TwoLevel)
        .cache_bytes(6 * 1_000_000)
        .build(backend)
        .unwrap();

    // Pre-load per the two-level policy.
    if let Some(report) = manager.preload_best().unwrap() {
        println!(
            "pre-loaded group-by {:?} ({} chunks, {:.1} MB, {} lattice descendants)\n",
            report.level,
            report.chunks,
            report.bytes as f64 / 1e6,
            report.descendants
        );
    }

    // Levels: (Product, Customer, Time, Channel, Scenario).
    let gb = |l: &[u8]| lattice.id_of(l).unwrap();

    println!("-- the analyst's session ------------------------------------");
    // 1. Yearly sales by product line across all stores.
    let q = Query::full_group_by(&grid, gb(&[2, 0, 1, 0, 0]));
    step(&mut manager, "yearly sales by product line", &q);

    // 2. Drill into quarters.
    let q = Query::full_group_by(&grid, gb(&[2, 0, 2, 0, 0]));
    step(&mut manager, "  drill down: by quarter", &q);

    // 3. Drill into product families for Q1-ish chunk.
    let q = Query::from_region(
        &grid,
        gb(&[3, 0, 2, 0, 0]),
        &[(0, 4), (0, 1), (0, 1), (0, 1), (0, 1)],
    );
    step(&mut manager, "    drill down: families, first quarters", &q);

    // 4. Roll back up to product groups by year — the classic roll-up the
    //    paper's active cache answers without the backend.
    let q = Query::full_group_by(&grid, gb(&[2, 0, 1, 0, 0]));
    step(&mut manager, "  roll up: product line by year (again)", &q);

    // 5. Slide across time (proximity).
    let q = Query::from_region(
        &grid,
        gb(&[3, 0, 2, 0, 0]),
        &[(0, 4), (0, 1), (1, 2), (0, 1), (0, 1)],
    );
    step(&mut manager, "    proximity: families, later quarters", &q);

    // 6. Channel breakdown of the grand total.
    let q = Query::full_group_by(&grid, gb(&[0, 0, 0, 1, 0]));
    step(&mut manager, "  roll up: total by channel", &q);

    // 7. The grand total.
    let q = Query::full_group_by(&grid, gb(&[0, 0, 0, 0, 0]));
    step(&mut manager, "  roll up: grand total", &q);

    let s = manager.session();
    println!(
        "\n{} queries, {} complete hits ({:.0}%), {:.1} ms avg",
        s.queries,
        s.complete_hits,
        100.0 * s.complete_hit_ratio(),
        s.avg_ms()
    );
    println!(
        "aggregated {} tuples in cache; scanned {} tuples at the backend",
        s.tuples_aggregated, s.backend_tuples
    );
}
