//! Compares the four lookup strategies and two replacement policies on the
//! same query stream — a miniature of the paper's §7.2 evaluation that
//! runs in seconds.
//!
//! Run with: `cargo run --release --example policy_comparison`

use aggcache::prelude::*;

fn run(
    dataset_tuples: u64,
    strategy: Strategy,
    policy: PolicyKind,
    preload: bool,
    cache_bytes: usize,
) -> (f64, f64) {
    let dataset = Apb1Config {
        n_tuples: dataset_tuples,
        ..Apb1Config::default()
    }
    .build();
    let backend = Backend::new(dataset.fact, AggFn::Sum, BackendCostModel::default());
    let mut manager = CacheManager::builder()
        .strategy(strategy)
        .policy(policy)
        .cache_bytes(cache_bytes)
        .build(backend)
        .unwrap();
    if preload {
        let _ = manager.preload_best().unwrap();
    }
    let max_level = dataset.grid.geom(dataset.fact_gb).level().to_vec();
    let mut stream = QueryStream::new(
        dataset.grid.clone(),
        WorkloadConfig::paper(max_level, 12345),
    );
    for _ in 0..60 {
        let (q, _) = stream.next_with_kind();
        manager.run(&(&q).into()).unwrap();
    }
    let s = manager.session();
    (100.0 * s.complete_hit_ratio(), s.avg_ms())
}

fn main() {
    const TUPLES: u64 = 100_000;
    const CACHE: usize = 2 * 1_000_000; // 2 MB against a ~2 MB base table

    println!("60-query paper-mix stream, {TUPLES} tuples, 2 MB cache\n");
    println!(
        "{:<22} {:>14} {:>12}",
        "configuration", "complete hits", "avg ms"
    );
    println!("{}", "-".repeat(50));

    let configs: [(&str, Strategy, PolicyKind, bool); 5] = [
        (
            "no aggregation",
            Strategy::NoAggregation,
            PolicyKind::Benefit,
            false,
        ),
        ("ESM + two-level", Strategy::Esm, PolicyKind::TwoLevel, true),
        ("VCM + two-level", Strategy::Vcm, PolicyKind::TwoLevel, true),
        (
            "VCMC + two-level",
            Strategy::Vcmc,
            PolicyKind::TwoLevel,
            true,
        ),
        ("VCMC + benefit", Strategy::Vcmc, PolicyKind::Benefit, false),
    ];
    for (name, strategy, policy, preload) in configs {
        let (hits, avg) = run(TUPLES, strategy, policy, preload, CACHE);
        println!("{name:<22} {hits:>13.1}% {avg:>11.2}");
    }

    println!(
        "\nExpected shape (paper Figs. 7-9): no-aggregation worst by far;\n\
         active caches close the gap; VCMC cheapest; two-level policy with\n\
         pre-loading beats the plain benefit policy."
    );
}
