//! Quickstart: build a small cube, run queries through the active cache,
//! and watch chunks get answered from the backend, the cache, and — the
//! point of the paper — by *aggregating* cached chunks.
//!
//! Run with: `cargo run --release --example quickstart`

use aggcache::prelude::*;

fn main() {
    // A small retail-ish cube: product (3-level hierarchy) × store.
    let dataset = SyntheticSpec::new()
        .dim("product", vec![1, 4, 16, 64], vec![1, 2, 4, 8])
        .dim("store", vec![1, 6, 24], vec![1, 3, 6])
        .tuples(20_000)
        .seed(7)
        .build();

    let backend = Backend::new(dataset.fact, AggFn::Sum, BackendCostModel::default());
    let mut manager = CacheManager::builder()
        .strategy(Strategy::Vcmc)
        .policy(PolicyKind::TwoLevel)
        .cache_bytes(2 * 1024 * 1024)
        .build(backend)
        .unwrap();
    let grid = manager.grid().clone();
    let lattice = grid.schema().lattice().clone();

    println!(
        "lattice: {} group-bys, {} chunks across all levels\n",
        lattice.num_group_bys(),
        grid.total_chunk_census()
    );

    // 1. A detailed query over the whole base: nothing cached yet → all
    //    chunks fetched from the backend (one batched SQL statement).
    let base = lattice.base();
    let q1 = Query::full_group_by(&grid, base);
    let r1 = manager.run(&(&q1).into()).unwrap();
    println!(
        "Q1 detail query     : {} cells | hits {} computed {} missed {} | {:.1} ms",
        r1.data.len(),
        r1.metrics.chunks_hit,
        r1.metrics.chunks_computed,
        r1.metrics.chunks_missed,
        r1.metrics.total_ms()
    );

    // 2. The same query again: a complete hit.
    let r2 = manager.run(&(&q1).into()).unwrap();
    println!(
        "Q2 repeat           : {} cells | hits {} computed {} missed {} | {:.1} ms",
        r2.data.len(),
        r2.metrics.chunks_hit,
        r2.metrics.chunks_computed,
        r2.metrics.chunks_missed,
        r2.metrics.total_ms()
    );

    // 3. A roll-up over the same data: never fetched, but the active cache
    //    *computes* it from the cached detail chunks.
    let rolled = lattice.id_of(&[2, 1]).unwrap();
    let q3 = Query::from_region(&grid, rolled, &[(0, 2), (0, 2)]);
    let r3 = manager.run(&(&q3).into()).unwrap();
    println!(
        "Q3 roll-up          : {} cells | hits {} computed {} missed {} | {:.1} ms  (complete hit: {})",
        r3.data.len(),
        r3.metrics.chunks_hit,
        r3.metrics.chunks_computed,
        r3.metrics.chunks_missed,
        r3.metrics.total_ms(),
        r3.metrics.complete_hit
    );

    // 4. The grand total — computable too, and VCMC knows the cheapest way
    //    before doing any work.
    let top = lattice.top();
    let key = ChunkKey::new(top, 0);
    if let Some(cost) = manager.costs().and_then(|c| c.cost(key)) {
        println!("\nVCMC says the grand total is computable by aggregating {cost} cached tuples");
    }
    let r4 = manager
        .run(&(&Query::full_group_by(&grid, top)).into())
        .unwrap();
    println!(
        "Q4 grand total      : value {:.0} | computed from cache: {}",
        r4.data.value_of(0),
        r4.metrics.complete_hit
    );

    println!(
        "\nsession: {} queries, {} complete hits, avg {:.1} ms",
        manager.session().queries,
        manager.session().complete_hits,
        manager.session().avg_ms()
    );
}
