//! Uses VCMC's cost table the way a cost-based optimizer would (paper
//! §5.2): ask — in O(1), without aggregating anything — what each chunk of
//! every group-by would cost to compute from the cache, and compare it
//! with the modeled backend cost to decide where each query should run.
//!
//! Run with: `cargo run --release --example cost_explorer`

use aggcache::prelude::*;

fn main() {
    let dataset = SyntheticSpec::new()
        .dim("product", vec![1, 4, 16], vec![1, 2, 4])
        .dim("region", vec![1, 3, 9], vec![1, 3, 3])
        .dim("month", vec![1, 12], vec![1, 4])
        .tuples(30_000)
        .seed(99)
        .build();
    let grid = dataset.grid.clone();
    let lattice = grid.schema().lattice().clone();
    let backend = Backend::new(dataset.fact, AggFn::Sum, BackendCostModel::default());
    let cost_model = *backend.cost_model();
    let mut manager = CacheManager::builder()
        .strategy(Strategy::Vcmc)
        .policy(PolicyKind::TwoLevel)
        .cache_bytes(8 * 1_000_000)
        .build(backend)
        .unwrap();

    // Cache the base level plus one intermediate group-by, so some chunks
    // have several computation paths with different costs.
    let base = lattice.base();
    manager
        .run(&(&Query::full_group_by(&grid, base)).into())
        .unwrap();
    let mid = lattice.id_of(&[1, 2, 1]).unwrap();
    manager
        .run(&(&Query::full_group_by(&grid, mid)).into())
        .unwrap();

    println!(
        "{:<12} {:>6} {:>14} {:>14} {:>10}",
        "group-by", "chunk", "cache cost", "backend ms", "decision"
    );
    println!("{}", "-".repeat(62));

    let per_tuple_us = manager.config().cache_per_tuple_us;
    let costs = manager.costs().expect("VCMC maintains a cost table");
    for (gb, level) in lattice.iter_levels() {
        // Show one chunk per group-by at a few interesting levels.
        let depth: u32 = level.iter().map(|&l| u32::from(l)).sum();
        if !depth.is_multiple_of(2) {
            continue;
        }
        let key = ChunkKey::new(gb, 0);
        let cache_cost = costs.cost(key);
        // What the backend would charge for the same chunk (modeled).
        let scanned = grid.base_cells_under(gb, 0).min(30_000);
        let backend_ms = cost_model.fetch_ms(scanned, 64);
        match cache_cost {
            Some(tuples) => {
                let cache_ms = f64::from(tuples) * per_tuple_us / 1000.0;
                let decision = if cache_ms <= backend_ms {
                    "CACHE"
                } else {
                    "BACKEND"
                };
                println!(
                    "{:<12} {:>6} {:>8} tuples {:>11.2} ms {:>10}",
                    format!("{level:?}"),
                    0,
                    tuples,
                    backend_ms,
                    decision
                );
            }
            None => {
                println!(
                    "{:<12} {:>6} {:>14} {:>11.2} ms {:>10}",
                    format!("{level:?}"),
                    0,
                    "not computable",
                    backend_ms,
                    "BACKEND"
                );
            }
        }
    }

    println!(
        "\nEvery `cache cost` above was answered in O(1) from the VCMC\n\
         arrays — \"very useful for a cost-based optimizer, which can then\n\
         decide whether to aggregate in the cache or go to the backend\" (§5.2)."
    );
}
