//! Cache-vs-backend cost arbitration (paper §5.2) against a warehouse with
//! **materialized aggregates**.
//!
//! When the backend keeps pre-computed group-bys (the common warehouse
//! setup the paper's §7.1 alludes to), a backend trip can be cheaper than
//! aggregating a million cached tuples — and VCMC's O(1) cost oracle is
//! exactly what lets the middle tier decide per chunk.
//!
//! Run with: `cargo run --release --example materialized_optimizer`

use aggcache::prelude::*;

fn build_manager(optimizer: bool) -> CacheManager {
    let dataset = SyntheticSpec::new()
        .dim("product", vec![1, 5, 25, 100], vec![1, 2, 5, 10])
        .dim("region", vec![1, 4, 16], vec![1, 2, 4])
        .dim("day", vec![1, 30], vec![1, 6])
        .tuples(150_000)
        .seed(8)
        .build();
    let lattice = dataset.grid.schema().lattice().clone();
    // The DBA materialized two popular summary tables.
    let materialized = [
        lattice.id_of(&[1, 1, 0]).unwrap(),
        lattice.id_of(&[0, 0, 1]).unwrap(),
    ];
    let backend = Backend::new(
        dataset.fact,
        AggFn::Sum,
        BackendCostModel {
            per_query_ms: 5.0, // same data centre, no WAN hop
            per_tuple_us: 2.0,
            per_result_tuple_us: 0.2,
        },
    )
    .with_materialized(&materialized)
    .unwrap();
    CacheManager::builder()
        .strategy(Strategy::Vcmc)
        .policy(PolicyKind::TwoLevel)
        .cache_bytes(64 * 1_000_000)
        .cache_per_tuple_us(1.0) // a busier middle tier
        .optimizer(optimizer)
        .build(backend)
        .unwrap()
}

fn session(optimizer: bool) -> (f64, usize, usize) {
    let mut mgr = build_manager(optimizer);
    let grid = mgr.grid().clone();
    let lattice = grid.schema().lattice().clone();
    // Warm the cache with the full base, then ask for summaries: the cache
    // *can* compute each of them by aggregating ~150k cached tuples, but
    // the materialized tables answer some far cheaper.
    mgr.run(&(&Query::full_group_by(&grid, lattice.base())).into())
        .unwrap();
    let mut demoted = 0;
    let mut computed = 0;
    for level in [
        [1u8, 1, 0],
        [1, 0, 0],
        [0, 1, 0],
        [0, 0, 1],
        [0, 0, 0],
        [2, 1, 0],
    ] {
        let gb = lattice.id_of(&level).unwrap();
        let m = mgr
            .run(&(&Query::full_group_by(&grid, gb)).into())
            .unwrap()
            .metrics;
        demoted += m.chunks_demoted;
        computed += m.chunks_computed;
    }
    (mgr.session().avg_ms(), demoted, computed)
}

fn main() {
    println!("Warehouse with materialized aggregates at (1,1,0) and (0,0,1).\n");
    let (ms_off, _, computed_off) = session(false);
    let (ms_on, demoted_on, computed_on) = session(true);
    println!(
        "{:<26} {:>10} {:>10} {:>10}",
        "mode", "avg ms", "demoted", "computed"
    );
    println!("{}", "-".repeat(60));
    println!(
        "{:<26} {:>10.2} {:>10} {:>10}",
        "always aggregate in cache", ms_off, 0, computed_off
    );
    println!(
        "{:<26} {:>10.2} {:>10} {:>10}",
        "cost-based optimizer", ms_on, demoted_on, computed_on
    );
    println!(
        "\nWith the optimizer on, chunks whose cheapest cache plan would\n\
         aggregate more virtual work than the warehouse's materialized\n\
         summary are *demoted* to backend fetches — the decision the paper\n\
         says VCMC's instantaneous cost lookup enables (§5.2)."
    );
}
