//! Property-based tests of the cache's replacement invariants.

use aggcache::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

fn key(gb: u32, chunk: u64) -> ChunkKey {
    ChunkKey::new(GroupById(gb), chunk)
}

fn chunk_of(cells: usize) -> ChunkData {
    let mut d = ChunkData::new(1);
    for i in 0..cells {
        d.push(&[i as u32], 1.0);
    }
    d
}

#[derive(Debug, Clone)]
enum Op {
    Insert {
        id: u64,
        cells: usize,
        origin: Origin,
        benefit: f64,
    },
    Get {
        id: u64,
    },
    Remove {
        id: u64,
    },
    Pin {
        id: u64,
    },
    Unpin {
        id: u64,
    },
    Boost {
        id: u64,
        amount: f64,
    },
}

fn arb_op() -> impl PropStrategy<Value = Op> {
    prop_oneof![
        (0u64..24, 0usize..12, proptest::bool::ANY, 0.0f64..50.0).prop_map(
            |(id, cells, backend, benefit)| Op::Insert {
                id,
                cells,
                origin: if backend {
                    Origin::Backend
                } else {
                    Origin::Computed
                },
                benefit,
            }
        ),
        (0u64..24).prop_map(|id| Op::Get { id }),
        (0u64..24).prop_map(|id| Op::Remove { id }),
        (0u64..24).prop_map(|id| Op::Pin { id }),
        (0u64..24).prop_map(|id| Op::Unpin { id }),
        (0u64..24, 0.0f64..50.0).prop_map(|(id, amount)| Op::Boost { id, amount }),
    ]
}

fn run_ops(policy: PolicyKind, budget: usize, ops: &[Op]) {
    let mut cache = ChunkCache::new(budget, policy);
    let mut pinned: std::collections::HashSet<u64> = Default::default();
    let mut shadow: std::collections::HashMap<u64, (usize, Origin)> = Default::default();
    for op in ops {
        match *op {
            Op::Insert {
                id,
                cells,
                origin,
                benefit,
            } => {
                let out = cache.insert(key(0, id), chunk_of(cells), origin, benefit);
                if out.admitted {
                    shadow.insert(id, (cells, origin));
                }
                // A refused insert — including a refused *replace* — leaves
                // the previous entry (if any) untouched, so the shadow
                // model changes only on admission.
                for ev in &out.evicted {
                    // Invariant: evicted chunks are never pinned…
                    assert!(!pinned.contains(&ev.chunk), "evicted a pinned chunk");
                    let (_, evicted_origin) =
                        shadow.remove(&ev.chunk).expect("evicted unknown chunk");
                    // …and under two-level, a computed insert never evicts
                    // backend chunks.
                    if policy == PolicyKind::TwoLevel && origin == Origin::Computed {
                        assert_eq!(evicted_origin, Origin::Computed, "computed evicted backend");
                    }
                }
            }
            Op::Get { id } => {
                assert_eq!(cache.get(&key(0, id)).is_some(), shadow.contains_key(&id));
            }
            Op::Remove { id } => {
                let was = cache.remove(&key(0, id));
                assert_eq!(was, shadow.remove(&id).is_some());
                pinned.remove(&id);
            }
            Op::Pin { id } => {
                if shadow.contains_key(&id) {
                    cache.pin(key(0, id));
                    pinned.insert(id);
                }
            }
            Op::Unpin { id } => {
                cache.unpin(&key(0, id));
                pinned.remove(&id);
            }
            Op::Boost { id, amount } => {
                let keys = [key(0, id)];
                cache.boost_group(keys.iter(), amount);
            }
        }
        // Global invariants after every operation.
        assert!(cache.used_bytes() <= budget, "budget exceeded");
        let shadow_bytes: usize = shadow.values().map(|(c, _)| c * PAPER_TUPLE_BYTES).sum();
        assert_eq!(cache.used_bytes(), shadow_bytes, "byte accounting drifted");
        let resident_bytes: usize = cache
            .keys()
            .map(|k| cache.peek(&k).expect("listed key missing").bytes)
            .sum();
        assert_eq!(
            cache.used_bytes(),
            resident_bytes,
            "used_bytes != sum of resident chunk bytes"
        );
        assert_eq!(cache.len(), shadow.len(), "entry accounting drifted");
        for (&id, &(cells, _)) in &shadow {
            let entry = cache.peek(&key(0, id)).expect("shadow chunk missing");
            assert_eq!(entry.data.len(), cells);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache never exceeds its budget, never evicts pinned chunks,
    /// keeps exact byte accounting, and (two-level) never lets computed
    /// chunks displace backend chunks — under arbitrary operation streams.
    #[test]
    fn cache_invariants_hold(
        ops in proptest::collection::vec(arb_op(), 1..120),
        budget_chunks in 1usize..16,
    ) {
        for policy in [PolicyKind::Lru, PolicyKind::Benefit, PolicyKind::TwoLevel] {
            run_ops(policy, budget_chunks * 12 * PAPER_TUPLE_BYTES, &ops);
        }
    }
}
