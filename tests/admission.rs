//! Conformance suite for the admission-policy lab.
//!
//! Two guarantees are held here:
//!
//! * **Single-stream bit-identity** — a one-tenant `TrafficEngine` under
//!   the default `benefit_mean` admission reproduces the original
//!   single-stream pipeline bit for bit (same queries, same answers, same
//!   virtual costs), across every lookup strategy and thread count. The
//!   multi-tenant rig is a strict superset of the paper pipeline, not a
//!   fork of it.
//! * **Table consistency** — admission refusals must leave the virtual
//!   count tables exactly as consistent as admissions do: after a
//!   contended multi-tenant session under each admission policy, a
//!   from-scratch [`CountTable`] rebuild over the resident set matches
//!   the incrementally maintained table.

use aggcache::cache::AdmissionKind;
use aggcache::prelude::*;

fn dataset() -> Dataset {
    Apb1Config {
        n_tuples: 20_000,
        density: 0.7,
        seed: 99,
    }
    .build()
}

fn backend(ds: &Dataset) -> Backend {
    Backend::new(ds.fact.clone(), AggFn::Sum, BackendCostModel::default())
}

fn manager(
    ds: &Dataset,
    strategy: Strategy,
    admission: AdmissionKind,
    threads: usize,
) -> CacheManager {
    CacheManager::builder()
        .strategy(strategy)
        .policy(PolicyKind::TwoLevel)
        .admission(admission)
        .cache_bytes(120_000)
        .threads(threads)
        .build(backend(ds))
        .unwrap()
}

const STRATEGIES: [Strategy; 5] = [
    Strategy::NoAggregation,
    Strategy::Esm,
    Strategy::Esmc {
        node_budget: Some(128),
    },
    Strategy::Vcm,
    Strategy::Vcmc,
];

/// A bit-exact digest of one query's outcome: the answer cells plus every
/// virtual-time and chunk-accounting field (wall-clock fields excluded by
/// construction).
type Digest = (Vec<(Vec<u32>, u64)>, Vec<u64>, [usize; 4], bool);

fn digest(r: ExecOutcome) -> Digest {
    let mut r = r.into_result();
    r.data.sort_by_coords();
    let cells: Vec<(Vec<u32>, u64)> = r
        .data
        .iter()
        .map(|(coords, v)| (coords.to_vec(), v.to_bits()))
        .collect();
    let m = &r.metrics;
    (
        cells,
        vec![
            m.backend_virtual_ms.to_bits(),
            m.agg_virtual_ms.to_bits(),
            m.lookup_virtual_ms.to_bits(),
            m.update_virtual_ms.to_bits(),
            m.total_ms().to_bits(),
        ],
        [
            m.chunks_hit,
            m.chunks_computed,
            m.chunks_missed,
            m.table_writes as usize,
        ],
        m.complete_hit,
    )
}

/// The original single-stream pipeline: `QueryStream` + `execute_batch`.
fn single_stream_run(ds: &Dataset, strategy: Strategy, threads: usize) -> Vec<ExecOutcome> {
    let mut mgr = manager(ds, strategy, AdmissionKind::BenefitMean, threads);
    mgr.preload_best().unwrap();
    let max_level = ds.grid.geom(ds.fact_gb).level().to_vec();
    let mut stream = QueryStream::new(ds.grid.clone(), WorkloadConfig::paper(max_level, 2000));
    let queries = stream.take_queries(60);
    mgr.run_batch(&QueryRequest::batch(&queries)).unwrap()
}

/// The multi-tenant rig collapsed to one tenant, same seed.
fn one_tenant_run(ds: &Dataset, strategy: Strategy, threads: usize) -> Vec<ExecOutcome> {
    let mut mgr = manager(ds, strategy, AdmissionKind::BenefitMean, threads);
    mgr.preload_best().unwrap();
    let max_level = ds.grid.geom(ds.fact_gb).level().to_vec();
    let cfg = MultiTenantConfig::uniform(1, max_level, 2000);
    let mut engine = TrafficEngine::new(ds.grid.clone(), &cfg).unwrap();
    let requests = engine.requests(60);
    assert!(requests.iter().all(|r| r.tenant == 0));
    mgr.run_batch(&requests).unwrap()
}

#[test]
fn one_tenant_engine_matches_single_stream_for_every_strategy_and_threads() {
    let ds = dataset();
    for strategy in STRATEGIES {
        let reference: Vec<_> = single_stream_run(&ds, strategy, 1)
            .into_iter()
            .map(digest)
            .collect();
        for threads in [1usize, 4] {
            let single: Vec<_> = single_stream_run(&ds, strategy, threads)
                .into_iter()
                .map(digest)
                .collect();
            let tenant: Vec<_> = one_tenant_run(&ds, strategy, threads)
                .into_iter()
                .map(digest)
                .collect();
            assert_eq!(
                single, reference,
                "{strategy:?}: single-stream run not thread-invariant at {threads} threads"
            );
            assert_eq!(
                tenant, reference,
                "{strategy:?}: one-tenant engine diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn benefit_mean_admission_is_a_pure_noop() {
    // The default admission kind must leave the whole session identical —
    // including the cache's resident set — and never refuse an insert.
    let ds = dataset();
    let a = single_stream_run(&ds, Strategy::Vcmc, 1);
    let mut mgr = manager(&ds, Strategy::Vcmc, AdmissionKind::BenefitMean, 1);
    mgr.preload_best().unwrap();
    let max_level = ds.grid.geom(ds.fact_gb).level().to_vec();
    let mut stream = QueryStream::new(ds.grid.clone(), WorkloadConfig::paper(max_level, 2000));
    let queries = stream.take_queries(60);
    let b = mgr.run_batch(&QueryRequest::batch(&queries)).unwrap();
    assert_eq!(mgr.cache().admission_rejects(), 0);
    let da: Vec<_> = a.into_iter().map(digest).collect();
    let db: Vec<_> = b.into_iter().map(digest).collect();
    assert_eq!(da, db);
}

/// Runs a contended multi-tenant session and cross-checks the virtual
/// count table against a from-scratch rebuild over the resident set.
fn assert_tables_consistent(strategy: Strategy, admission: AdmissionKind) {
    let ds = dataset();
    let mut mgr = CacheManager::builder()
        .strategy(strategy)
        .policy(PolicyKind::TwoLevel)
        .admission(admission)
        // Tight budget: the admission gate must actually fire.
        .cache_bytes(60_000)
        .build(backend(&ds))
        .unwrap();
    mgr.preload_best().unwrap();
    let max_level = ds.grid.geom(ds.fact_gb).level().to_vec();
    let cfg = MultiTenantConfig::contended(4, 1.2, max_level, 2000);
    let mut engine = TrafficEngine::new(ds.grid.clone(), &cfg).unwrap();
    let requests = engine.requests(120);
    mgr.run_batch(&requests).unwrap();

    let cached: std::collections::HashSet<ChunkKey> = mgr.cache().keys().collect();
    let rebuilt = CountTable::rebuild_from(ds.grid.clone(), |k| cached.contains(&k));
    mgr.counts().unwrap().assert_same(&rebuilt);
}

#[test]
fn count_tables_stay_consistent_under_every_admission_policy() {
    for admission in AdmissionKind::lab() {
        for strategy in [Strategy::Vcm, Strategy::Vcmc] {
            assert_tables_consistent(strategy, admission);
        }
    }
}

#[test]
fn frequency_filter_actually_rejects_under_contention() {
    // Guards against the gate silently degenerating to admit-everything:
    // in a contended skewed session the TinyLFU filter must refuse some
    // inserts, and refusals must never exceed insert attempts.
    let ds = dataset();
    let mut mgr = CacheManager::builder()
        .strategy(Strategy::Vcmc)
        .policy(PolicyKind::TwoLevel)
        .admission(AdmissionKind::tiny_lfu())
        .cache_bytes(60_000)
        .build(backend(&ds))
        .unwrap();
    let max_level = ds.grid.geom(ds.fact_gb).level().to_vec();
    let cfg = MultiTenantConfig::contended(4, 1.2, max_level, 2000);
    let mut engine = TrafficEngine::new(ds.grid.clone(), &cfg).unwrap();
    let requests = engine.requests(150);
    mgr.run_batch(&requests).unwrap();
    assert!(
        mgr.cache().admission_rejects() > 0,
        "tiny_lfu never fired on a contended stream"
    );
    let sketch = mgr
        .cache()
        .admission_sketch()
        .expect("tiny_lfu has a sketch");
    assert!(sketch.resets() > 0 || mgr.cache().admission_rejects() < 10_000);
}
