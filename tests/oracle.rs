//! Cross-crate integration tests: every lookup strategy, run over a real
//! query stream, must return exactly the answers a brute-force oracle
//! computes from the raw fact table.

use aggcache::prelude::*;

/// Answers a query by scanning every fact tuple and rolling up by hand —
/// independent of all chunk/cache machinery except the grid geometry used
/// to select the requested chunks.
fn oracle_answer(dataset_grid: &ChunkGrid, backend: &Backend, q: &Query) -> ChunkData {
    let mut out = ChunkData::new(dataset_grid.num_dims());
    for (_, data) in backend.fetch(q.gb, &q.chunks).unwrap().chunks {
        out.append(&data);
    }
    out.sort_by_coords();
    out
}

fn stream_against_oracle(strategy: Strategy, policy: PolicyKind, cache_bytes: usize) {
    let dataset = SyntheticSpec::new()
        .dim("a", vec![1, 3, 9, 27], vec![1, 2, 4, 8])
        .dim("b", vec![1, 4, 12], vec![1, 2, 4])
        .dim("c", vec![1, 5], vec![1, 3])
        .tuples(4_000)
        .seed(17)
        .build();
    let grid = dataset.grid.clone();
    let oracle_backend = Backend::new(
        dataset.fact.clone(),
        AggFn::Sum,
        BackendCostModel::default(),
    );
    let backend = Backend::new(
        dataset.fact.clone(),
        AggFn::Sum,
        BackendCostModel::default(),
    );
    let mut manager = CacheManager::builder()
        .strategy(strategy)
        .policy(policy)
        .cache_bytes(cache_bytes)
        .build(backend)
        .unwrap();

    let max_level = grid.schema().base_level();
    let mut stream = QueryStream::new(grid.clone(), WorkloadConfig::paper(max_level, 99));
    for i in 0..120 {
        let (q, kind) = stream.next_with_kind();
        let expected = oracle_answer(&grid, &oracle_backend, &q);
        let mut got = manager.run(&(&q).into()).unwrap();
        got.data.sort_by_coords();
        assert_eq!(
            got.data, expected,
            "strategy {strategy:?} policy {policy:?} query #{i} ({kind:?}) {q:?}"
        );
    }
}

#[test]
fn no_aggregation_matches_oracle() {
    stream_against_oracle(Strategy::NoAggregation, PolicyKind::Benefit, 64 * 1024);
}

#[test]
fn esm_matches_oracle() {
    stream_against_oracle(Strategy::Esm, PolicyKind::TwoLevel, 64 * 1024);
}

#[test]
fn esmc_matches_oracle() {
    stream_against_oracle(
        Strategy::Esmc {
            node_budget: Some(200_000),
        },
        PolicyKind::TwoLevel,
        64 * 1024,
    );
}

#[test]
fn vcm_matches_oracle() {
    stream_against_oracle(Strategy::Vcm, PolicyKind::TwoLevel, 64 * 1024);
}

#[test]
fn vcmc_matches_oracle() {
    stream_against_oracle(Strategy::Vcmc, PolicyKind::TwoLevel, 64 * 1024);
}

#[test]
fn vcmc_matches_oracle_under_heavy_eviction() {
    // A cache that holds only a handful of chunks: constant churn.
    stream_against_oracle(Strategy::Vcmc, PolicyKind::TwoLevel, 4 * 1024);
    stream_against_oracle(Strategy::Vcmc, PolicyKind::Benefit, 4 * 1024);
}

#[test]
fn vcm_matches_oracle_under_heavy_eviction() {
    stream_against_oracle(Strategy::Vcm, PolicyKind::TwoLevel, 4 * 1024);
}

#[test]
fn aggregate_functions_agree_with_oracle() {
    // Each aggregate function end-to-end: fetch base, compute the top.
    for agg in [AggFn::Sum, AggFn::Count, AggFn::Min, AggFn::Max] {
        let dataset = SyntheticSpec::new()
            .dim("a", vec![1, 2, 6], vec![1, 2, 3])
            .dim("b", vec![1, 4], vec![1, 2])
            .tuples(300)
            .seed(5)
            .build();
        let grid = dataset.grid.clone();
        let backend = Backend::new(dataset.fact.clone(), agg, BackendCostModel::default());
        let expected = backend
            .fetch(grid.schema().lattice().top(), &[0])
            .unwrap()
            .chunks
            .remove(0)
            .1;
        let backend2 = Backend::new(dataset.fact.clone(), agg, BackendCostModel::default());
        let mut manager = CacheManager::builder()
            .strategy(Strategy::Vcmc)
            .policy(PolicyKind::TwoLevel)
            .cache_bytes(usize::MAX >> 1)
            .build(backend2)
            .unwrap();
        let base_q = Query::full_group_by(&grid, grid.schema().lattice().base());
        manager.run(&(&base_q).into()).unwrap();
        let top_q = Query::full_group_by(&grid, grid.schema().lattice().top());
        let r = manager.run(&(&top_q).into()).unwrap();
        assert!(r.metrics.complete_hit, "{agg:?} must aggregate in cache");
        assert_eq!(r.data, expected, "{agg:?}");
    }
}
