//! Property-based tests of the cluster tier's consistent-hash ring: key
//! ownership is a partition (every chunk key is owned by exactly
//! `min(replication, live)` distinct live nodes, deterministically), and
//! membership changes move only the minimal key slice.

use aggcache::prelude::*;
use proptest::prelude::*;
// Our `Strategy` enum (from the prelude glob) shadows proptest's trait of
// the same name; re-import the trait under an alias.
use proptest::strategy::Strategy as PropStrategy;

fn key(gb: u32, chunk: u64) -> ChunkKey {
    ChunkKey::new(GroupById(gb), chunk)
}

/// A sample of chunk keys spread over group-bys and chunk numbers.
fn sample_keys(n_gbs: u32, n_chunks: u64) -> Vec<ChunkKey> {
    (0..n_gbs)
        .flat_map(|gb| (0..n_chunks).map(move |c| key(gb, c)))
        .collect()
}

/// Strategy: ring shape (nodes, replication, vnodes) over small but
/// representative ranges.
fn arb_shape() -> impl PropStrategy<Value = (u32, usize, u32)> {
    (1u32..=8, 1usize..=3, 1u32..=48)
}

proptest! {
    /// Ownership is a partition: every key has exactly
    /// `min(replication, live)` distinct live owners, `owners()[0]` is
    /// `primary()`, and two rings with identical history agree bit for
    /// bit on every assignment.
    #[test]
    fn ownership_is_a_partition(shape in arb_shape()) {
        let (nodes, replication, vnodes) = shape;
        let ring = HashRing::new(nodes, replication, vnodes).unwrap();
        let twin = HashRing::new(nodes, replication, vnodes).unwrap();
        let want = replication.min(nodes as usize);
        for k in sample_keys(6, 24) {
            let owners = ring.owners(k);
            prop_assert_eq!(owners.len(), want, "wrong owner count for {:?}", k);
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), owners.len(), "duplicate owners for {:?}", k);
            prop_assert!(owners.iter().all(|&n| ring.is_alive(n)));
            prop_assert_eq!(ring.primary(k), Some(owners[0]));
            prop_assert_eq!(owners, twin.owners(k), "rings with same history diverge");
        }
    }

    /// Killing one node moves only that node's key slice: keys whose
    /// owner set did not include the dead node keep their owner set
    /// exactly, and no live key maps to the dead node. Revival restores
    /// the original assignment bit for bit.
    #[test]
    fn leave_moves_only_the_minimal_slice(shape in arb_shape(), victim_sel in 0u32..8) {
        // No prop_assume in the vendored proptest: widen 1-node rings to 2
        // so there is always a survivor.
        let (nodes, replication, vnodes) = shape;
        let nodes = nodes.max(2);
        let victim = victim_sel % nodes;
        let keys = sample_keys(6, 24);
        let mut ring = HashRing::new(nodes, replication, vnodes).unwrap();
        let before: Vec<Vec<u32>> = keys.iter().map(|&k| ring.owners(k)).collect();

        ring.set_alive(victim, false);
        for (k, old) in keys.iter().zip(&before) {
            let now = ring.owners(*k);
            prop_assert!(!now.contains(&victim), "dead node still owns {:?}", k);
            if !old.contains(&victim) {
                prop_assert_eq!(
                    &now, old,
                    "key {:?} moved although {} was not an owner", k, victim
                );
            } else {
                // Failover keeps every surviving owner, in order.
                let kept: Vec<u32> =
                    old.iter().copied().filter(|&n| n != victim).collect();
                prop_assert!(
                    now.len() >= kept.len() && now.starts_with(&kept),
                    "failover reshuffled surviving owners of {:?}: {:?} -> {:?}",
                    k, old, now
                );
            }
        }

        ring.set_alive(victim, true);
        let after: Vec<Vec<u32>> = keys.iter().map(|&k| ring.owners(k)).collect();
        prop_assert_eq!(before, after, "revival must restore the original assignment");
    }

    /// Joining a node moves only the slices it takes over: for every key,
    /// the new owner set is either unchanged or differs only by the new
    /// node claiming a slot (surviving owners keep their relative order).
    #[test]
    fn join_moves_only_the_minimal_slice(shape in arb_shape()) {
        let (nodes, replication, vnodes) = shape;
        let keys = sample_keys(6, 24);
        let mut ring = HashRing::new(nodes, replication, vnodes).unwrap();
        let before: Vec<Vec<u32>> = keys.iter().map(|&k| ring.owners(k)).collect();
        let joined = ring.add_node();
        let mut touched = 0usize;
        for (k, old) in keys.iter().zip(&before) {
            let now = ring.owners(*k);
            if &now == old {
                continue;
            }
            touched += 1;
            // The only permissible change is the new node entering the
            // owner list; everyone else keeps relative order.
            prop_assert!(
                now.contains(&joined),
                "owners of {:?} changed without the new node: {:?} -> {:?}",
                k, old, now
            );
            let without: Vec<u32> =
                now.iter().copied().filter(|&n| n != joined).collect();
            prop_assert!(
                old.starts_with(&without) || without.iter().all(|n| old.contains(n)),
                "join reshuffled old owners of {:?}: {:?} -> {:?}",
                k, old, now
            );
        }
        // Minimality, coarsely: a join must never remap everything
        // (vnodes partition the ring, each node takes ~1/(n+1) of it).
        // Only meaningful when the owner count was not capped before the
        // join (replication ≤ nodes): a capped ring legitimately adds the
        // new node to *every* key's owner set. And with very few vnode
        // points the slice granularity is too coarse to bound.
        if replication <= nodes as usize && vnodes >= 8 {
            prop_assert!(
                touched < keys.len(),
                "join remapped every key ({} of {})", touched, keys.len()
            );
        }
    }
}
