//! Workspace tests of the persistent spill tier: `SpillFormat` round
//! trips (property-tested on random records and on every chunk a paper
//! stream produces, under all five strategies), tmpdir-isolated store
//! round trips, the warm-start oracle, and the `docs/FORMAT.md`
//! golden-file check that fails if the on-disk bytes ever drift from the
//! normative spec.

use aggcache::prelude::*;
use proptest::prelude::*;
// Our `Strategy` enum collides with proptest's trait of the same name
// under the two glob imports; re-import both under unambiguous names.
use aggcache::prelude::Strategy;
use proptest::strategy::Strategy as PropStrategy;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A process- and call-unique scratch directory (removed by each test).
fn tmpdir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "aggcache-spill-it-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_records_equal(a: &SpillRecord, b: &SpillRecord) {
    assert_eq!(a.key, b.key);
    assert_eq!(a.origin, b.origin);
    assert_eq!(a.benefit.to_bits(), b.benefit.to_bits());
    assert_eq!(a.data.n_dims(), b.data.n_dims());
    assert_eq!(a.data.raw_coords(), b.data.raw_coords());
    let av: Vec<u64> = a.data.raw_values().iter().map(|v| v.to_bits()).collect();
    let bv: Vec<u64> = b.data.raw_values().iter().map(|v| v.to_bits()).collect();
    assert_eq!(av, bv, "IEEE-754 value bits must survive exactly");
}

/// Strategy: an arbitrary record — any dimensionality 1-4, any coords,
/// any f64 *bit pattern* (NaN payloads, -0.0 and infinities included).
fn arb_record() -> impl PropStrategy<Value = SpillRecord> {
    (
        1usize..=4,
        0u32..(1 << 24),
        0u64..(1u64 << 40),
        0u8..=2,
        0u64..u64::MAX,
    )
        .prop_flat_map(|(n_dims, gb, chunk, origin, benefit_bits)| {
            proptest::collection::vec(
                (
                    proptest::collection::vec(0u32..u32::MAX, n_dims),
                    0u64..u64::MAX,
                ),
                0..40,
            )
            .prop_map(move |cells| {
                let mut data = ChunkData::new(n_dims);
                for (coords, value_bits) in &cells {
                    data.push(coords, f64::from_bits(*value_bits));
                }
                SpillRecord {
                    key: ChunkKey::new(GroupById(gb), chunk),
                    origin,
                    benefit: f64::from_bits(benefit_bits),
                    data,
                }
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `decode(encode(r))` reproduces every field bit-for-bit, and
    /// re-encoding the decoded record reproduces the bytes exactly.
    #[test]
    fn format_round_trip_is_bit_identical(record in arb_record()) {
        let encoded = encode_record(record.key, record.origin, record.benefit, &record.data);
        let decoded = decode_record(&encoded).unwrap();
        assert_records_equal(&decoded, &record);
        let re = encode_record(decoded.key, decoded.origin, decoded.benefit, &decoded.data);
        prop_assert_eq!(re, encoded);
    }

    /// The corruption-detection guarantee behind quarantine-and-refetch:
    /// flipping any bits of any single byte of a serialized record makes
    /// `decode_record` fail — never a silent mis-decode (the magic,
    /// version, structure or trailing FNV-1a checksum check catches it).
    #[test]
    fn any_single_byte_corruption_is_detected(
        record in arb_record(),
        pos in 0usize..(1 << 16),
        delta in 1u8..=255,
    ) {
        let encoded = encode_record(record.key, record.origin, record.benefit, &record.data);
        let mut bad = encoded.clone();
        let i = pos % bad.len();
        bad[i] ^= delta;
        prop_assert!(
            decode_record(&bad).is_err(),
            "flipping byte {i} by {delta:#04x} went undetected"
        );
    }
}

/// Every chunk a paper query stream spills — under each of the five
/// lookup strategies, over a random small grid — round-trips through the
/// on-disk file bit-identically (the file re-encodes to its own bytes).
#[test]
fn every_spilled_chunk_round_trips_under_all_strategies() {
    let strategies = [
        Strategy::NoAggregation,
        Strategy::Esm,
        Strategy::Esmc { node_budget: None },
        Strategy::Vcm,
        Strategy::Vcmc,
    ];
    for (i, &strategy) in strategies.iter().enumerate() {
        // A different random-ish shape per strategy.
        let dataset = SyntheticSpec::new()
            .dim("a", vec![1, 4, 12 + i as u32], vec![1, 2, 4])
            .dim("b", vec![1, 6 + i as u32], vec![1, 3])
            .tuples(600 + 100 * i as u64)
            .build();
        let dir = tmpdir("strat");
        let backend = Backend::new(
            dataset.fact.clone(),
            AggFn::Sum,
            BackendCostModel::default(),
        );
        let mut mgr = CacheManager::builder()
            .strategy(strategy)
            .policy(PolicyKind::TwoLevel)
            .cache_bytes(1024) // tight: force demotions
            .spill(SpillConfig::new(&dir))
            .build(backend)
            .unwrap();
        let max_level = dataset.grid.geom(dataset.fact_gb).level().to_vec();
        let mut stream = QueryStream::new(
            dataset.grid.clone(),
            WorkloadConfig::paper(max_level, 7 + i as u64),
        );
        for q in stream.take_queries(40) {
            mgr.run(&q.into()).unwrap();
        }
        mgr.checkpoint().unwrap();
        let store = mgr.spill_store().unwrap();
        assert!(!store.is_empty(), "strategy {i}: nothing was spilled");
        // Decode every chunk file straight off the disk and re-encode:
        // the bytes must reproduce exactly.
        let mut files = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().and_then(|e| e.to_str()) != Some("chunk") {
                continue;
            }
            files += 1;
            let bytes = std::fs::read(&path).unwrap();
            let rec = decode_record(&bytes).unwrap();
            let re = encode_record(rec.key, rec.origin, rec.benefit, &rec.data);
            assert_eq!(re, bytes, "strategy {i}: {} drifted", path.display());
        }
        assert_eq!(files, store.len(), "index and directory disagree");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Tmpdir-isolated store round trip: records written by one store are
/// read back bit-identically by a second store opened over the same
/// directory (the index travels with it).
#[test]
fn store_round_trips_across_reopen() {
    let dir = tmpdir("reopen");
    let mut data = ChunkData::new(3);
    data.push(&[1, 2, 3], f64::MIN_POSITIVE);
    data.push(&[4, 5, 6], -1.0e300);
    let key = ChunkKey::new(GroupById(17), 42);
    {
        let mut store = SpillStore::open(SpillConfig::new(&dir)).unwrap();
        store.write(key, 1, 8.25, &data).unwrap();
        store
            .checkpoint([(key, 1u8, 8.25f64, &data)].into_iter())
            .unwrap();
    }
    let store = SpillStore::open(SpillConfig::new(&dir)).unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(store.resident_count(), 1);
    let rec = store.read(key).unwrap().unwrap();
    assert_records_equal(
        &rec,
        &SpillRecord {
            key,
            origin: 1,
            benefit: 8.25,
            data,
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The warm-start oracle, end to end through the public API: a session
/// that checkpoints and "restarts" answers subsequent queries
/// bit-identically to one that never restarted.
#[test]
fn warm_restart_matches_never_restarted_oracle() {
    let dataset = SyntheticSpec::new()
        .dim("p", vec![1, 3, 9], vec![1, 3, 3])
        .dim("s", vec![1, 6], vec![1, 2])
        .tuples(800)
        .build();
    let build = |spill: Option<&PathBuf>| {
        let backend = Backend::new(
            dataset.fact.clone(),
            AggFn::Sum,
            BackendCostModel::default(),
        );
        let mut b = CacheManager::builder()
            .strategy(Strategy::Vcmc)
            .policy(PolicyKind::TwoLevel)
            .cache_bytes(8 * 1024);
        if let Some(dir) = spill {
            b = b.spill(SpillConfig::new(dir));
        }
        b.build(backend).unwrap()
    };
    let max_level = dataset.grid.geom(dataset.fact_gb).level().to_vec();
    let queries = |seed| {
        let mut s = QueryStream::new(
            dataset.grid.clone(),
            WorkloadConfig::paper(max_level.clone(), seed),
        );
        QueryRequest::batch(&s.take_queries(30))
    };
    let warmup = queries(11);
    let probe = queries(12);

    let dir = tmpdir("oracle");
    // Oracle: one continuous session (no spill, no restart).
    let mut oracle = build(None);
    // Warm path: run the warm-up with the spill attached, checkpoint,
    // then "restart" by building a second manager over the same dir.
    let mut first = build(Some(&dir));
    for q in &warmup {
        oracle.run(q).unwrap();
        first.run(q).unwrap();
    }
    first.checkpoint().unwrap();
    drop(first);
    let mut warm = build(Some(&dir));
    assert!(warm.spill_store().unwrap().resident_count() > 0);
    // Identical RAM population and count tables after the restart...
    warm.counts().unwrap().assert_same(oracle.counts().unwrap());
    // ...and bit-identical answers (values AND metrics) from here on.
    for q in &probe {
        let a = oracle.run(q).unwrap();
        let b = warm.run(q).unwrap();
        assert_eq!(a.data.raw_coords(), b.data.raw_coords());
        let av: Vec<u64> = a.data.raw_values().iter().map(|v| v.to_bits()).collect();
        let bv: Vec<u64> = b.data.raw_values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(av, bv);
        assert_eq!(a.metrics.complete_hit, b.metrics.complete_hit);
        assert_eq!(
            a.metrics.total_ms().to_bits(),
            b.metrics.total_ms().to_bits()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Golden-file checks against docs/FORMAT.md (the normative spec).
// ---------------------------------------------------------------------

/// The spec's worked example, verbatim (docs/FORMAT.md "Worked example").
fn golden_fixture() -> (ChunkKey, u8, f64, ChunkData) {
    let mut data = ChunkData::new(2);
    data.push(&[0, 1], 1.5);
    data.push(&[2, 3], -4.25);
    data.push(&[7, 0], 0.0);
    (ChunkKey::new(GroupById(3), 7), 1, 2.5, data)
}

fn format_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/FORMAT.md");
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("docs/FORMAT.md must exist (the normative spec): {e}"))
}

/// Hex bytes between `<!-- GOLDEN:tag -->` and `<!-- /GOLDEN:tag -->`.
/// Each fixture line is hex groups, then two-plus spaces, then prose
/// commentary; only the hex part left of that gap counts.
fn golden_hex(doc: &str, tag: &str) -> String {
    let begin = format!("<!-- GOLDEN:{tag} -->");
    let end = format!("<!-- /GOLDEN:{tag} -->");
    let at = doc
        .find(&begin)
        .unwrap_or_else(|| panic!("docs/FORMAT.md lost its {begin} marker"));
    let stop = doc[at..]
        .find(&end)
        .unwrap_or_else(|| panic!("docs/FORMAT.md lost its {end} marker"));
    doc[at + begin.len()..at + stop]
        .lines()
        .map(str::trim)
        .filter(|l| l.chars().next().is_some_and(|c| c.is_ascii_hexdigit()))
        .map(|l| l.split("  ").next().unwrap_or(""))
        .collect::<String>()
        .chars()
        .filter(char::is_ascii_hexdigit)
        .collect::<String>()
        .to_lowercase()
}

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// `docs/FORMAT.md`'s worked-example record must be byte-for-byte what
/// this build writes. Any change to the serializer fails here until the
/// spec is updated in the same commit (and versioned, if incompatible).
#[test]
fn format_md_golden_record_matches_implementation() {
    let (key, origin, benefit, data) = golden_fixture();
    let encoded = encode_record(key, origin, benefit, &data);
    let want = to_hex(&encoded);
    let doc = format_md();
    assert_eq!(
        golden_hex(&doc, "RECORD"),
        want,
        "docs/FORMAT.md record fixture drifted from the implementation;\n\
         the bytes this build writes are:\n{want}"
    );
    // The prose must pin the constants the fixture depends on.
    for needle in ["`ACSP`", "`ACSI`", "FNV-1a", "little-endian"] {
        assert!(doc.contains(needle), "docs/FORMAT.md lost {needle}");
    }
}

/// Same for the index file: a store checkpointed with exactly the worked
/// example produces the spec's `spill.idx` bytes.
#[test]
fn format_md_golden_index_matches_implementation() {
    let (key, origin, benefit, data) = golden_fixture();
    let dir = tmpdir("golden-idx");
    let mut store = SpillStore::open(SpillConfig::new(&dir)).unwrap();
    store
        .checkpoint([(key, origin, benefit, &data)].into_iter())
        .unwrap();
    let bytes = std::fs::read(dir.join("spill.idx")).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let want = to_hex(&bytes);
    assert_eq!(
        golden_hex(&format_md(), "INDEX"),
        want,
        "docs/FORMAT.md index fixture drifted from the implementation;\n\
         the bytes this build writes are:\n{want}"
    );
}
