//! Chaos × multi-tenancy interaction suite: merged multi-tenant traffic
//! over the full fault-tolerant decorator stack (`RetryingBackend` over
//! `FaultInjectingBackend`).
//!
//! The contract: faults change availability and virtual cost, never
//! values — for every tenant, under every admission policy. And the
//! per-tenant attribution must stay conservative: tenant-level degraded
//! and query counts aggregated by the `MetricsRegistry` sum exactly to
//! the manager's session totals.

use aggcache::cache::AdmissionKind;
use aggcache::obs::MetricsRegistry;
use aggcache::prelude::*;
use std::sync::Arc;

/// A 3-dimensional cube with enough lattice structure for drill-downs,
/// roll-ups and computable (degraded-servable) chunks.
fn dataset() -> Dataset {
    SyntheticSpec::new()
        .dim("product", vec![1, 3, 12], vec![1, 3, 6])
        .dim("store", vec![1, 8], vec![1, 4])
        .dim("time", vec![1, 4], vec![1, 2])
        .tuples(2_500)
        .seed(7)
        .build()
}

fn raw_backend(ds: &Dataset) -> Backend {
    Backend::new(ds.fact.clone(), AggFn::Sum, BackendCostModel::default())
}

/// Multi-tenant arrivals: all three lab profiles, Zipf-skewed.
fn tagged_arrivals(ds: &Dataset, n: usize, seed: u64) -> Vec<(u32, Query)> {
    let max_level = ds.grid.geom(ds.fact_gb).level().to_vec();
    let cfg = MultiTenantConfig::contended(4, 1.2, max_level, seed);
    let mut engine = TrafficEngine::new(ds.grid.clone(), &cfg).unwrap();
    engine.tagged_queries(n)
}

/// A manager over the faulty retrying stack with the given admission.
fn chaotic_manager(ds: &Dataset, admission: AdmissionKind, rate: f64) -> CacheManager {
    let faulty =
        FaultInjectingBackend::new(raw_backend(ds), FaultProfile::uniform(rate, 0xFA57)).unwrap();
    let retrying = RetryingBackend::new(
        faulty,
        RetryPolicy {
            max_attempts: 3,
            seed: 0xFA57,
            ..RetryPolicy::default()
        },
    )
    .unwrap();
    CacheManager::builder()
        .strategy(Strategy::Esmc {
            node_budget: Some(64),
        })
        .policy(PolicyKind::TwoLevel)
        .admission(admission)
        .cache_bytes(200 * PAPER_TUPLE_BYTES)
        .build(retrying)
        .unwrap()
}

#[test]
fn faulty_multi_tenant_streams_never_corrupt_answers() {
    let ds = dataset();
    let oracle = raw_backend(&ds);
    let arrivals = tagged_arrivals(&ds, 80, 4_000);
    for admission in AdmissionKind::lab() {
        let mut mgr = chaotic_manager(&ds, admission, 0.5);
        let _ = mgr.preload_best();
        let (mut answered, mut failed, mut degraded) = (0u64, 0u64, 0u64);
        for (i, (tenant, q)) in arrivals.iter().enumerate() {
            let mut expected = ChunkData::new(ds.grid.num_dims());
            for (_, data) in oracle.fetch(q.gb, &q.chunks).unwrap().chunks {
                expected.append(&data);
            }
            expected.sort_by_coords();
            match mgr.run(&QueryRequest::new(q.clone()).tenant(*tenant)) {
                Ok(mut r) => {
                    answered += 1;
                    degraded += u64::from(r.metrics.chunks_degraded > 0);
                    r.data.sort_by_coords();
                    assert_eq!(
                        r.data, expected,
                        "{admission:?}: tenant {tenant} query #{i} corrupted under faults"
                    );
                }
                Err(CacheError::BackendUnavailable { .. }) => failed += 1,
                Err(e) => panic!("{admission:?}: unexpected error under faults: {e}"),
            }
        }
        assert_eq!(answered + failed, arrivals.len() as u64);
        assert!(answered > 0, "{admission:?}: nothing answered at rate 0.5");
        assert_eq!(mgr.session().degraded_queries, degraded);
    }
}

#[test]
fn per_tenant_degraded_counts_sum_to_session_totals() {
    let ds = dataset();
    let arrivals = tagged_arrivals(&ds, 120, 5_000);
    for admission in AdmissionKind::lab() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut mgr = chaotic_manager(&ds, admission, 0.4);
        mgr.set_tracer(Some(registry.clone() as Arc<dyn Tracer>));
        let _ = mgr.preload_best();
        let mut failed = 0u64;
        for (tenant, q) in &arrivals {
            match mgr.run(&QueryRequest::new(q.clone()).tenant(*tenant)) {
                Ok(_) => {}
                Err(CacheError::BackendUnavailable { .. }) => failed += 1,
                Err(e) => panic!("{admission:?}: unexpected error under faults: {e}"),
            }
        }
        let tenants = registry.tenants_view();
        assert!(
            tenants.len() > 1,
            "{admission:?}: expected several tenants to be attributed"
        );
        let sum = |f: fn(&TenantStats) -> u64| tenants.iter().map(|(_, t)| f(t)).sum::<u64>();
        assert_eq!(
            sum(|t| t.queries) + failed,
            arrivals.len() as u64,
            "{admission:?}: answered queries must all be attributed to a tenant"
        );
        assert_eq!(
            sum(|t| t.queries),
            mgr.session().queries,
            "{admission:?}: tenant query counts vs session"
        );
        assert_eq!(
            sum(|t| t.chunks_degraded),
            mgr.session().chunks_degraded,
            "{admission:?}: tenant degraded chunks vs session"
        );
        assert_eq!(
            sum(|t| t.degraded_queries),
            mgr.session().degraded_queries,
            "{admission:?}: tenant degraded queries vs session"
        );
        assert!(
            mgr.session().chunks_degraded > 0,
            "{admission:?}: rate 0.4 should force some degraded serves"
        );
    }
}

#[test]
fn chaotic_multi_tenant_sessions_are_deterministic() {
    let ds = dataset();
    let arrivals = tagged_arrivals(&ds, 60, 6_000);
    let run = || {
        let mut mgr = chaotic_manager(&ds, AdmissionKind::tiny_lfu(), 0.4);
        let _ = mgr.preload_best();
        let mut outcomes = Vec::new();
        for (tenant, q) in &arrivals {
            match mgr.run(&QueryRequest::new(q.clone()).tenant(*tenant)) {
                Ok(r) => outcomes.push((
                    *tenant,
                    true,
                    r.metrics.total_ms().to_bits(),
                    r.metrics.chunks_degraded,
                )),
                Err(CacheError::BackendUnavailable { .. }) => {
                    outcomes.push((*tenant, false, 0, 0));
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        (
            outcomes,
            mgr.session().chunks_degraded,
            mgr.cache().admission_rejects(),
        )
    };
    assert_eq!(run(), run());
}
