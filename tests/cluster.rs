//! Conformance suite for the sharded cluster tier.
//!
//! Anchors held here:
//!
//! * **1-node collapse** — a 1-node replication-1 cluster reproduces the
//!   non-clustered pipeline bit for bit: answers, per-query metrics,
//!   session totals and the resident cache set, for every lookup
//!   strategy. The cluster tier is a strict superset of the single-node
//!   pipeline, not a fork of it.
//! * **Correctness under sharding** — an N-node cooperative cluster
//!   returns the same answer cells as a fresh single-node run of the
//!   same stream.
//! * **Table consistency** — per-node virtual count tables survive
//!   cooperative fills, node failure, revival and rebalancing: a
//!   from-scratch rebuild over each node's resident set matches the
//!   incrementally maintained table.
//! * **Determinism** — identical runs (any thread count) produce
//!   bit-identical virtual times and wire accounting.

use aggcache::cluster::{ClusterManager, DEFAULT_VNODES};
use aggcache::prelude::*;
use aggcache::workload::{QueryStream, WorkloadConfig};

fn dataset() -> Dataset {
    Apb1Config {
        n_tuples: 20_000,
        density: 0.7,
        seed: 42,
    }
    .build()
}

fn node_manager(ds: &Dataset, strategy: Strategy, threads: usize, budget: usize) -> CacheManager {
    CacheManager::builder()
        .strategy(strategy)
        .policy(PolicyKind::TwoLevel)
        .cache_bytes(budget)
        .threads(threads)
        .build(Backend::new(
            ds.fact.clone(),
            AggFn::Sum,
            BackendCostModel::default(),
        ))
        .unwrap()
}

fn cluster(
    ds: &Dataset,
    n: usize,
    replication: usize,
    strategy: Strategy,
    threads: usize,
    budget: usize,
) -> ClusterManager {
    let mut b = ClusterManager::builder()
        .replication(replication)
        .vnodes(DEFAULT_VNODES);
    for _ in 0..n {
        b = b.node(node_manager(ds, strategy, threads, budget));
    }
    b.build().unwrap()
}

fn stream_requests(ds: &Dataset, n: usize, seed: u64) -> Vec<QueryRequest> {
    let max_level = ds.grid.geom(ds.fact_gb).level().to_vec();
    let mut stream = QueryStream::new(ds.grid.clone(), WorkloadConfig::paper(max_level, seed));
    QueryRequest::batch(&stream.take_queries(n))
}

const STRATEGIES: [Strategy; 5] = [
    Strategy::NoAggregation,
    Strategy::Esm,
    Strategy::Esmc {
        node_budget: Some(128),
    },
    Strategy::Vcm,
    Strategy::Vcmc,
];

/// Sorted answer cells with bit-exact values.
fn cells(data: &ChunkData) -> Vec<(Vec<u32>, u64)> {
    let mut d = data.clone();
    d.sort_by_coords();
    d.iter().map(|(c, v)| (c.to_vec(), v.to_bits())).collect()
}

fn metrics_bits(m: &QueryMetrics) -> Vec<u64> {
    vec![
        m.backend_virtual_ms.to_bits(),
        m.agg_virtual_ms.to_bits(),
        m.lookup_virtual_ms.to_bits(),
        m.update_virtual_ms.to_bits(),
        m.total_ms().to_bits(),
        m.chunks_hit as u64,
        m.chunks_computed as u64,
        m.chunks_missed as u64,
        m.table_writes,
        m.lookup_nodes,
        u64::from(m.complete_hit),
    ]
}

fn cache_keys(mgr: &CacheManager) -> Vec<u64> {
    let mut keys: Vec<u64> = mgr.cache().keys().map(|k| k.pack()).collect();
    keys.sort_unstable();
    keys
}

#[test]
fn one_node_cluster_is_bit_identical_to_plain_pipeline() {
    let ds = dataset();
    let budget = 120_000;
    for strategy in STRATEGIES {
        let requests = stream_requests(&ds, 60, 2_000);
        let mut plain = node_manager(&ds, strategy, 1, budget);
        let mut clustered = cluster(&ds, 1, 1, strategy, 1, budget);
        for req in &requests {
            let a = plain.run(req).unwrap();
            let b = clustered.run(req).unwrap();
            assert_eq!(
                cells(&a.data),
                cells(&b.data),
                "{strategy:?}: answer diverged"
            );
            assert_eq!(
                metrics_bits(&a.metrics),
                metrics_bits(&b.metrics),
                "{strategy:?}: metrics diverged"
            );
            assert_eq!(
                b.remote,
                RemoteMetrics::default(),
                "{strategy:?}: 1-node cluster charged remote costs"
            );
            assert_eq!(
                b.critical_path_ms.to_bits(),
                a.metrics.total_ms().to_bits(),
                "{strategy:?}: single-group critical path must equal the local total"
            );
        }
        assert_eq!(
            cache_keys(&plain),
            cache_keys(clustered.node(0)),
            "{strategy:?}: resident sets diverged"
        );
        assert_eq!(
            plain.session().total_ms.to_bits(),
            clustered.node(0).session().total_ms.to_bits(),
            "{strategy:?}: session totals diverged"
        );
        assert_eq!(*clustered.session_remote(), RemoteMetrics::default());
    }
}

#[test]
fn sharded_cluster_answers_match_single_node_oracle() {
    let ds = dataset();
    let requests = stream_requests(&ds, 60, 3_000);
    // Replication 2 and a tight per-node budget: primaries evict under
    // pressure while replicas still hold copies, which is what drives
    // summary-gated cooperative serves.
    let mut c = cluster(&ds, 4, 2, Strategy::Vcmc, 1, 60_000);
    let mut oracle = node_manager(&ds, Strategy::Vcmc, 1, usize::MAX >> 1);
    let outs = c.run_batch(&requests).unwrap();
    for (req, out) in requests.iter().zip(&outs) {
        let want = oracle.run(req).unwrap();
        assert_eq!(cells(&out.data), cells(&want.data), "answer diverged");
    }
    // The cooperative path actually fired.
    assert!(
        c.session_remote().remote_chunks > 0,
        "no cooperative serves in a 4-node session"
    );
    assert!(c.session_remote().bytes_on_wire > 0);
    let stats = c.node_stats();
    assert!(stats.iter().any(|s| s.serves_out > 0));
    assert!(stats.iter().any(|s| s.remote_chunks_in > 0));
    // Every node took a share of the traffic.
    assert!(stats.iter().all(|s| s.queries > 0));
}

#[test]
fn count_tables_stay_consistent_through_failures_and_rebalance() {
    let ds = dataset();
    for strategy in [Strategy::Vcm, Strategy::Vcmc] {
        let mut c = cluster(&ds, 3, 2, strategy, 1, 120_000);
        let check = |c: &ClusterManager, when: &str| {
            for n in 0..3u32 {
                let mgr = c.node(n);
                let cached: std::collections::HashSet<ChunkKey> = mgr.cache().keys().collect();
                let rebuilt = CountTable::rebuild_from(ds.grid.clone(), |k| cached.contains(&k));
                mgr.counts()
                    .unwrap_or_else(|| panic!("{strategy:?}: node {n} has no count table"))
                    .assert_same(&rebuilt);
                let _ = when;
            }
        };
        c.run_batch(&stream_requests(&ds, 40, 4_000)).unwrap();
        check(&c, "after warmup");
        c.kill_node(1);
        c.run_batch(&stream_requests(&ds, 20, 5_000)).unwrap();
        check(&c, "after failover");
        c.revive_node(1);
        c.rebalance();
        check(&c, "after rebalance");
        c.run_batch(&stream_requests(&ds, 20, 6_000)).unwrap();
        check(&c, "after failback");
    }
}

#[test]
fn cluster_sessions_are_deterministic_across_runs_and_threads() {
    let ds = dataset();
    let run = |threads: usize| {
        let mut c = cluster(&ds, 4, 2, Strategy::Vcmc, threads, 120_000);
        let outs = c.run_batch(&stream_requests(&ds, 50, 7_000)).unwrap();
        let digest: Vec<(u64, u64)> = outs
            .iter()
            .map(|o| (o.total_virtual_ms().to_bits(), o.critical_path_ms.to_bits()))
            .collect();
        (
            digest,
            c.session_remote().bytes_on_wire,
            c.session_remote().remote_virtual_ms.to_bits(),
        )
    };
    let a = run(1);
    let b = run(1);
    assert_eq!(a, b, "same-seed cluster runs diverged");
    let c = run(4);
    assert_eq!(a, c, "cluster session is thread-count dependent");
}
