//! Property-based tests of the workload generators: kind-frequency
//! convergence, bit-reproducibility per seed, and query validity against
//! the grid, on randomly generated mixes, configurations and chunkings.

use aggcache::gen::fig4_spec;
use aggcache::prelude::*;
use proptest::prelude::*;
// Our `Strategy` enum (from the prelude glob) shadows proptest's trait of
// the same name; re-import the trait under an alias.
use proptest::strategy::Strategy as PropStrategy;
use std::sync::Arc;

/// Strategy: a random valid query mix (normalized positive weights).
fn arb_mix() -> impl PropStrategy<Value = QueryMix> {
    (0.05f64..1.0, 0.05f64..1.0, 0.05f64..1.0, 0.05f64..1.0).prop_map(|(a, b, c, d)| {
        let sum = a + b + c + d;
        // Make the four probabilities sum to 1 exactly: the last takes
        // the float remainder so `validate()` holds bit-exactly.
        let (dd, ru, px) = (a / sum, b / sum, c / sum);
        QueryMix {
            drill_down: dd,
            roll_up: ru,
            proximity: px,
            random: 1.0 - dd - ru - px,
        }
    })
}

/// Strategy: a random small grid (1-3 dims, 1-3 hierarchy levels each).
fn arb_grid() -> impl PropStrategy<Value = Arc<ChunkGrid>> {
    let dim = (1u8..=3).prop_flat_map(|h| {
        proptest::collection::vec(1u32..=3, h as usize).prop_map(move |fanouts| {
            let mut cards = vec![1u32];
            for f in fanouts {
                let last = *cards.last().unwrap();
                cards.push(last * f + 1);
            }
            let mut chunks: Vec<u32> = cards
                .iter()
                .enumerate()
                .map(|(l, &c)| c.min(1 + l as u32))
                .collect();
            for l in 1..chunks.len() {
                chunks[l] = chunks[l].max(chunks[l - 1]);
            }
            (cards, chunks)
        })
    });
    proptest::collection::vec(dim, 1..=3).prop_map(|dims| {
        let mut spec = SyntheticSpec::new();
        for (i, (cards, chunks)) in dims.into_iter().enumerate() {
            spec = spec.dim(format!("d{i}"), cards, chunks);
        }
        spec.build_grid()
    })
}

/// Checks one query against the grid: its group-by must be answerable
/// from data at `max_level`, and its chunk list non-empty, deduplicated
/// and within the group-by's chunk count.
fn assert_query_valid(grid: &ChunkGrid, max_level: &Level, q: &Query) {
    let level = grid.schema().lattice().level_of(q.gb);
    for (d, (&l, &max)) in level.iter().zip(max_level.iter()).enumerate() {
        assert!(
            l <= max,
            "dim {d}: query level {l} below the data level {max}"
        );
    }
    assert!(!q.chunks.is_empty(), "query covers no chunks");
    let n = grid.n_chunks(q.gb);
    let mut seen = std::collections::BTreeSet::new();
    for &c in &q.chunks {
        assert!(c < n, "chunk {c} out of bounds (gb {:?} has {n})", q.gb);
        assert!(seen.insert(c), "duplicate chunk {c} in query");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The generated kind frequencies converge to the configured mix.
    /// Lattice-border fallbacks convert drill-downs and roll-ups into
    /// each other (never into proximity), so the pair is checked as a
    /// sum; proximity and random are never substituted on multi-level
    /// grids and must match individually.
    #[test]
    fn kind_frequencies_converge_to_mix(mix in arb_mix(), seed in 0u64..1_000_000) {
        let grid = fig4_spec().build_grid();
        let max = grid.schema().base_level();
        let mut stream = QueryStream::new(grid, WorkloadConfig {
            mix,
            level_zipf: None,
            seed,
            ..WorkloadConfig::paper(max, seed)
        });
        const N: usize = 2_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..N {
            let (_, kind) = stream.next_with_kind();
            *counts.entry(kind).or_insert(0usize) += 1;
        }
        let freq = |k: QueryKind| *counts.get(&k).unwrap_or(&0) as f64 / N as f64;
        let tol = 0.07; // ~6 binomial sigma at N=2000
        prop_assert!((freq(QueryKind::Proximity) - mix.proximity).abs() < tol,
            "proximity {} vs {}", freq(QueryKind::Proximity), mix.proximity);
        prop_assert!((freq(QueryKind::Random) - mix.random).abs() < tol,
            "random {} vs {}", freq(QueryKind::Random), mix.random);
        let pair = freq(QueryKind::DrillDown) + freq(QueryKind::RollUp);
        prop_assert!((pair - (mix.drill_down + mix.roll_up)).abs() < tol,
            "drill+roll {pair} vs {}", mix.drill_down + mix.roll_up);
    }

    /// A stream is a pure function of its seed: two instances with the
    /// same configuration produce identical queries and kinds.
    #[test]
    fn streams_are_bit_reproducible_per_seed(
        seed in 0u64..u64::MAX,
        zipf in (proptest::bool::ANY, 0.0f64..3.0),
    ) {
        let grid = fig4_spec().build_grid();
        let max = grid.schema().base_level();
        let cfg = WorkloadConfig {
            level_zipf: zipf.0.then_some(zipf.1),
            ..WorkloadConfig::paper(max, seed)
        };
        let mut a = QueryStream::new(grid.clone(), cfg.clone());
        let mut b = QueryStream::new(grid, cfg);
        for _ in 0..300 {
            prop_assert_eq!(a.next_with_kind(), b.next_with_kind());
        }
    }

    /// The multi-tenant merge is a pure function of its seed too: same
    /// arrivals (tenant, kind, query and bit-exact virtual times).
    #[test]
    fn traffic_engine_is_bit_reproducible_per_seed(
        seed in 0u64..u64::MAX,
        tenants in 1u32..6,
        skew in 0.0f64..2.0,
    ) {
        let grid = fig4_spec().build_grid();
        let max = grid.schema().base_level();
        let cfg = MultiTenantConfig::contended(tenants, skew, max, seed);
        let mut a = TrafficEngine::new(grid.clone(), &cfg).unwrap();
        let mut b = TrafficEngine::new(grid, &cfg).unwrap();
        for _ in 0..200 {
            let (x, y) = (a.next_arrival(), b.next_arrival());
            prop_assert_eq!(x.tenant, y.tenant);
            prop_assert_eq!(x.kind, y.kind);
            prop_assert_eq!(&x.query, &y.query);
            prop_assert_eq!(x.vtime_ms.to_bits(), y.vtime_ms.to_bits());
        }
    }

    /// Every generated query is valid for its grid: an answerable
    /// group-by and in-bounds, deduplicated, non-empty chunk lists —
    /// across random grids, spans, biases and Zipf settings.
    #[test]
    fn queries_stay_within_grid_bounds(
        grid in arb_grid(),
        mix in arb_mix(),
        max_span in 1u32..5,
        bias in 0.2f64..1.5,
        zipf in (proptest::bool::ANY, 0.0f64..3.0),
        seed in 0u64..u64::MAX,
    ) {
        let max = grid.schema().base_level();
        let mut stream = QueryStream::try_new(grid.clone(), WorkloadConfig {
            mix,
            max_level: max.clone(),
            max_span,
            aggregated_bias: bias,
            level_zipf: zipf.0.then_some(zipf.1),
            seed,
        }).unwrap();
        for _ in 0..150 {
            let (q, _) = stream.next_with_kind();
            assert_query_valid(&grid, &max, &q);
        }
    }

    /// Multi-tenant arrivals inherit per-query validity and are globally
    /// time-ordered with strictly positive inter-arrival virtual times.
    #[test]
    fn traffic_engine_arrivals_are_valid_and_ordered(
        grid in arb_grid(),
        tenants in 1u32..5,
        skew in 0.0f64..2.0,
        seed in 0u64..u64::MAX,
    ) {
        let max = grid.schema().base_level();
        let cfg = MultiTenantConfig::contended(tenants, skew, max.clone(), seed);
        let mut engine = TrafficEngine::new(grid.clone(), &cfg).unwrap();
        let mut last = 0.0f64;
        for _ in 0..150 {
            let a = engine.next_arrival();
            prop_assert!(a.tenant < tenants);
            prop_assert!(a.vtime_ms.is_finite() && a.vtime_ms >= last);
            last = a.vtime_ms;
            assert_query_valid(&grid, &max, &a.query);
        }
    }
}
