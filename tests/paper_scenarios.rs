//! End-to-end reproductions of the paper's running examples (Examples 1-6
//! and Figures 1, 2, 4, 5), driven through the public API.

use aggcache::prelude::*;

/// Figure 1's setup: dimensions Product and Time, chunks at level
/// (Product, Time) and at level (Time). The closure property: chunk 0 of
/// (Time) is computable from chunks {0, 1, 2, 3} of (Product, Time).
#[test]
fn figure1_closure_property() {
    let dataset = SyntheticSpec::new()
        .dim("product", vec![1, 9], vec![1, 3]) // 3 chunks of 3 values
        .dim("time", vec![1, 8], vec![1, 4]) // 4 chunks of 2 values
        .tuples(72)
        .density(1.0)
        .build();
    let grid = dataset.grid.clone();
    let lattice = grid.schema().lattice().clone();
    let product_time = lattice.base(); // (1, 1)
    let time_only = lattice.id_of(&[0, 1]).unwrap(); // (Time)

    // Chunk 0 of (Time) must map to the product-complete set of chunks at
    // (Product, Time) covering time-chunk 0: with 3 product chunks, those
    // are chunks {0, 4, 8}… numbering is row-major (product, time).
    let (pgb, parents) = grid.parent_chunks(time_only, 0, 0);
    assert_eq!(pgb, product_time);
    assert_eq!(parents, vec![0, 4, 8]);

    // And the data computed from them equals a direct backend computation.
    let backend = Backend::new(
        dataset.fact.clone(),
        AggFn::Sum,
        BackendCostModel::default(),
    );
    let mut mgr = CacheManager::builder()
        .strategy(Strategy::Vcm)
        .policy(PolicyKind::TwoLevel)
        .cache_bytes(usize::MAX >> 1)
        .build(Backend::new(
            dataset.fact.clone(),
            AggFn::Sum,
            BackendCostModel::default(),
        ))
        .unwrap();
    mgr.run(&(&Query::full_group_by(&grid, product_time)).into())
        .unwrap();
    let r = mgr.run(&(&Query::new(time_only, vec![0])).into()).unwrap();
    assert!(r.metrics.complete_hit);
    let expected = backend.fetch(time_only, &[0]).unwrap().chunks.remove(0).1;
    let mut got = r.data;
    got.sort_by_coords();
    assert_eq!(got, expected);
}

/// Example 1 (Figure 2): queries Q1 and Q2 populate the cache; Q3 overlaps
/// both and only its missing chunks go to the backend.
#[test]
fn example1_overlapping_queries_reuse_chunks() {
    let dataset = SyntheticSpec::new()
        .dim("x", vec![1, 16], vec![1, 8])
        .dim("y", vec![1, 16], vec![1, 8])
        .tuples(400)
        .seed(3)
        .build();
    let grid = dataset.grid.clone();
    let base = grid.schema().lattice().base();
    let mut mgr = CacheManager::builder()
        .strategy(Strategy::Vcm)
        .policy(PolicyKind::TwoLevel)
        .cache_bytes(usize::MAX >> 1)
        .build(Backend::new(
            dataset.fact,
            AggFn::Sum,
            BackendCostModel::default(),
        ))
        .unwrap();

    // Q1: a block in the lower-left; Q2: a block in the upper-right.
    let q1 = Query::from_region(&grid, base, &[(0, 3), (0, 3)]);
    let q2 = Query::from_region(&grid, base, &[(4, 8), (4, 8)]);
    let m1 = mgr.run(&(&q1).into()).unwrap().metrics;
    let m2 = mgr.run(&(&q2).into()).unwrap().metrics;
    assert_eq!(m1.chunks_missed, 9);
    assert_eq!(m2.chunks_missed, 16);

    // Q3 straddles both: it reuses every chunk it has in common with Q1
    // and Q2, fetching only the shaded remainder.
    let q3 = Query::from_region(&grid, base, &[(2, 6), (2, 6)]);
    let m3 = mgr.run(&(&q3).into()).unwrap().metrics;
    let overlap_q1 = 1; // (2..3) x (2..3)
    let overlap_q2 = 4; // (4..6) x (4..6)
    assert_eq!(m3.chunks_hit, overlap_q1 + overlap_q2);
    assert_eq!(m3.chunks_missed, 16 - overlap_q1 - overlap_q2);
}

/// Example 2 (Figure 3): group-by (0,2,0) of a 3-dimensional schema with
/// hierarchy sizes (1,2,1) is computable from (0,2,1) or (1,2,0), and all
/// paths to the base can answer it.
#[test]
fn example2_lattice_computability() {
    let schema = std::sync::Arc::new(
        Schema::new(
            vec![
                Dimension::balanced("A", vec![1, 4]).unwrap(),
                Dimension::balanced("B", vec![1, 2, 6]).unwrap(),
                Dimension::balanced("C", vec![1, 4]).unwrap(),
            ],
            "m",
        )
        .unwrap(),
    );
    let lattice = schema.lattice().clone();
    assert_eq!(lattice.num_group_bys(), 2 * 3 * 2);
    let target = lattice.id_of(&[0, 2, 0]).unwrap();
    for (src_level, expect) in [
        ([0u8, 2, 1], true),
        ([1, 2, 0], true),
        ([1, 2, 1], true),
        ([0, 1, 1], false), // B too aggregated
    ] {
        let src = lattice.id_of(&src_level).unwrap();
        assert_eq!(
            lattice.computable_from(target, src),
            expect,
            "{src_level:?}"
        );
    }
}

/// Examples 3+4 (Figure 4), end to end: the exact cache state of the
/// figure, reached through the manager, yields the figure's counts.
#[test]
fn example4_counts_via_manager() {
    let dataset = SyntheticSpec::new()
        .dim("x", vec![1, 4], vec![1, 2])
        .dim("y", vec![1, 4], vec![1, 2])
        .tuples(16)
        .density(1.0)
        .build();
    let grid = dataset.grid.clone();
    let lattice = grid.schema().lattice().clone();
    let b11 = lattice.base();
    let b01 = lattice.id_of(&[0, 1]).unwrap();
    let b10 = lattice.id_of(&[1, 0]).unwrap();
    let b00 = lattice.top();

    let mut mgr = CacheManager::builder()
        .strategy(Strategy::Vcm)
        .policy(PolicyKind::TwoLevel)
        .cache_bytes(usize::MAX >> 1)
        .build(Backend::new(
            dataset.fact,
            AggFn::Sum,
            BackendCostModel::default(),
        ))
        .unwrap();
    // Reach the figure's cache state with queries: chunks 0,2,3 of (1,1),
    // chunk 0 of (0,1), chunk 0 of (0,0).
    mgr.run(&(&Query::new(b11, vec![0, 2, 3])).into()).unwrap();
    mgr.run(&(&Query::new(b01, vec![0])).into()).unwrap();
    mgr.run(&(&Query::new(b00, vec![0])).into()).unwrap();

    let counts = mgr.counts().unwrap();
    // (0,1) chunk 0: cached + computable through (1,1) = 2.
    assert_eq!(counts.count(ChunkKey::new(b01, 0)), 2);
    // (1,0) chunk 1: computable through (1,1) chunks 2,3 only.
    assert_eq!(counts.count(ChunkKey::new(b10, 1)), 1);
    assert_eq!(counts.count(ChunkKey::new(b10, 0)), 0);
    // (1,1) chunk 1 was never touched.
    assert_eq!(counts.count(ChunkKey::new(b11, 1)), 0);
}

/// Example 5 (Figure 5): two computation paths with different costs; the
/// cost-based methods take the cheaper one and Property "it is better to
/// compute from a more immediate ancestor" holds.
#[test]
fn example5_cost_based_path_choice() {
    let dataset = SyntheticSpec::new()
        .dim("x", vec![1, 12], vec![1, 2])
        .dim("y", vec![1, 12], vec![1, 2])
        .tuples(144)
        .density(1.0)
        .build();
    let grid = dataset.grid.clone();
    let lattice = grid.schema().lattice().clone();
    let mut mgr = CacheManager::builder()
        .strategy(Strategy::Vcmc)
        .policy(PolicyKind::TwoLevel)
        .cache_bytes(usize::MAX >> 1)
        .build(Backend::new(
            dataset.fact,
            AggFn::Sum,
            BackendCostModel::default(),
        ))
        .unwrap();
    // Cache the full base (large chunks) and the full (0,1) level (small
    // chunks).
    mgr.run(&(&Query::full_group_by(&grid, lattice.base())).into())
        .unwrap();
    let b01 = lattice.id_of(&[0, 1]).unwrap();
    mgr.run(&(&Query::full_group_by(&grid, b01)).into())
        .unwrap();

    // The grand total is computable via base (144 tuples) or via the two
    // cached/computed (0,1) chunks (24 tuples). VCMC must pick the latter.
    let top_key = ChunkKey::new(lattice.top(), 0);
    let cost = mgr.costs().unwrap().cost(top_key).unwrap();
    assert!(cost <= 24, "expected the cheap path, got {cost} tuples");
    let m = mgr
        .run(&(&Query::new(lattice.top(), vec![0])).into())
        .unwrap()
        .metrics;
    assert!(m.complete_hit);
    assert!(m.tuples_aggregated <= 24);
}

/// Example 6 (Figure 6): the presence of a sibling chunk raises the
/// benefit of a group — expressed in counts: with only chunk 0 of (1,1)
/// cached, (0,1) chunk 0 is not computable; adding chunk 2 (its sibling
/// along x) makes it so.
#[test]
fn example6_groups_enable_computability() {
    let grid = aggcache::gen::fig4_spec().build_grid();
    let lattice = grid.schema().lattice().clone();
    let b11 = lattice.base();
    let b01 = lattice.id_of(&[0, 1]).unwrap();
    let mut counts = CountTable::new(grid.clone());
    counts.on_insert(ChunkKey::new(b11, 0));
    assert!(!counts.is_computable(ChunkKey::new(b01, 0)));
    counts.on_insert(ChunkKey::new(b11, 2));
    assert!(counts.is_computable(ChunkKey::new(b01, 0)));
    // And removing either breaks the group again.
    counts.on_evict(ChunkKey::new(b11, 0));
    assert!(!counts.is_computable(ChunkKey::new(b01, 0)));
}
