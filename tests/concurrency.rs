//! Equivalence and stress tests for the concurrent probe/aggregate
//! pipeline.
//!
//! The contract under test (DESIGN.md §6): [`CacheManager::execute_batch`]
//! — concurrent probes plus sharded plan execution — is *bit-identical* to
//! a sequential [`CacheManager::execute`] loop over the same queries, for
//! every lookup strategy, every replacement policy and any thread count.
//! "Bit-identical" covers the returned cells (compared via `f64::to_bits`),
//! the per-query virtual-time metrics, the final cache contents and the
//! session totals.

use aggcache::avg::AvgCache;
use aggcache::core::{esm, LookupStats};
use aggcache::prelude::*;
use std::thread;

/// A 3-dimensional cube small enough to sweep the full strategy × policy
/// matrix quickly, but with enough lattice structure (3 × 2 × 2 levels)
/// for drill-downs, roll-ups and computable hits.
fn dataset() -> Dataset {
    SyntheticSpec::new()
        .dim("product", vec![1, 3, 12], vec![1, 3, 6])
        .dim("store", vec![1, 8], vec![1, 4])
        .dim("time", vec![1, 4], vec![1, 2])
        .tuples(2_500)
        .seed(7)
        .build()
}

/// A deterministic paper-mix query stream over the dataset's grid.
fn stream_queries(ds: &Dataset, n: usize, seed: u64) -> Vec<Query> {
    let max_level = ds.grid.geom(ds.fact_gb).level().to_vec();
    let mut stream = QueryStream::new(ds.grid.clone(), WorkloadConfig::paper(max_level, seed));
    stream.take_queries(n)
}

fn manager_for(
    ds: &Dataset,
    strategy: Strategy,
    policy: PolicyKind,
    cache_bytes: usize,
    threads: usize,
) -> CacheManager {
    let backend = Backend::new(ds.fact.clone(), AggFn::Sum, BackendCostModel::default());
    CacheManager::builder()
        .strategy(strategy)
        .policy(policy)
        .cache_bytes(cache_bytes)
        .threads(threads)
        .build(backend)
        .unwrap()
}

fn assert_data_bit_identical(a: &ChunkData, b: &ChunkData, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: cell counts differ");
    for i in 0..a.len() {
        assert_eq!(a.coords_of(i), b.coords_of(i), "{ctx}: coords of cell {i}");
        assert_eq!(
            a.value_of(i).to_bits(),
            b.value_of(i).to_bits(),
            "{ctx}: value bits of cell {i} ({} vs {})",
            a.value_of(i),
            b.value_of(i),
        );
    }
}

/// All deterministic (virtual-time and count) metric fields; the `*_ns`
/// wall-clock fields are intentionally excluded.
fn assert_metrics_identical(a: &QueryMetrics, b: &QueryMetrics, ctx: &str) {
    assert_eq!(a.chunks_hit, b.chunks_hit, "{ctx}: chunks_hit");
    assert_eq!(
        a.chunks_computed, b.chunks_computed,
        "{ctx}: chunks_computed"
    );
    assert_eq!(a.chunks_missed, b.chunks_missed, "{ctx}: chunks_missed");
    assert_eq!(a.chunks_demoted, b.chunks_demoted, "{ctx}: chunks_demoted");
    assert_eq!(a.complete_hit, b.complete_hit, "{ctx}: complete_hit");
    assert_eq!(a.lookup_nodes, b.lookup_nodes, "{ctx}: lookup_nodes");
    assert_eq!(a.table_writes, b.table_writes, "{ctx}: table_writes");
    assert_eq!(
        a.tuples_aggregated, b.tuples_aggregated,
        "{ctx}: tuples_aggregated"
    );
    assert_eq!(a.backend_tuples, b.backend_tuples, "{ctx}: backend_tuples");
    for (name, x, y) in [
        (
            "backend_virtual_ms",
            a.backend_virtual_ms,
            b.backend_virtual_ms,
        ),
        ("agg_virtual_ms", a.agg_virtual_ms, b.agg_virtual_ms),
        (
            "lookup_virtual_ms",
            a.lookup_virtual_ms,
            b.lookup_virtual_ms,
        ),
        (
            "update_virtual_ms",
            a.update_virtual_ms,
            b.update_virtual_ms,
        ),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: {name} ({x} vs {y})");
    }
}

fn sorted_keys(mgr: &CacheManager) -> Vec<ChunkKey> {
    let mut keys: Vec<ChunkKey> = mgr.cache().keys().collect();
    keys.sort_by_key(|k| (k.gb.index(), k.chunk));
    keys
}

fn assert_caches_identical(a: &CacheManager, b: &CacheManager, ctx: &str) {
    let ka = sorted_keys(a);
    let kb = sorted_keys(b);
    assert_eq!(ka, kb, "{ctx}: cached key sets differ");
    for key in ka {
        let da = &a.cache().peek(&key).unwrap().data;
        let db = &b.cache().peek(&key).unwrap().data;
        assert_data_bit_identical(da, db, &format!("{ctx}: cached chunk {key:?}"));
    }
}

fn assert_sessions_identical(a: &SessionMetrics, b: &SessionMetrics, ctx: &str) {
    assert_eq!(a.queries, b.queries, "{ctx}: session queries");
    assert_eq!(
        a.complete_hits, b.complete_hits,
        "{ctx}: session complete_hits"
    );
    assert_eq!(
        a.tuples_aggregated, b.tuples_aggregated,
        "{ctx}: session tuples_aggregated"
    );
    assert_eq!(
        a.backend_tuples, b.backend_tuples,
        "{ctx}: session backend_tuples"
    );
    for (name, x, y) in [
        ("total_ms", a.total_ms, b.total_ms),
        (
            "backend_virtual_ms",
            a.backend_virtual_ms,
            b.backend_virtual_ms,
        ),
        ("agg_virtual_ms", a.agg_virtual_ms, b.agg_virtual_ms),
        (
            "lookup_virtual_ms",
            a.lookup_virtual_ms,
            b.lookup_virtual_ms,
        ),
        (
            "update_virtual_ms",
            a.update_virtual_ms,
            b.update_virtual_ms,
        ),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{ctx}: session {name} ({x} vs {y})"
        );
    }
}

/// Runs the full equivalence check for one strategy: for each policy and
/// thread count, `execute_batch` (in windows, so later batches see cache
/// state mutated by earlier ones) must match a sequential `execute` loop.
///
/// The cache budget is deliberately small — a fraction of the base cube —
/// so the stream churns through admissions and evictions and the version-
/// stamped re-probe path is genuinely exercised.
fn assert_equivalence_for(strategy: Strategy) {
    let ds = dataset();
    let queries = stream_queries(&ds, 36, 2_000);
    let budget = 600 * PAPER_TUPLE_BYTES;
    for policy in [PolicyKind::Lru, PolicyKind::Benefit, PolicyKind::TwoLevel] {
        // Sequential baseline (threads = 1, plain execute loop).
        let mut seq = manager_for(&ds, strategy, policy, budget, 1);
        seq.preload_best().unwrap();
        let seq_results: Vec<ExecOutcome> = queries
            .iter()
            .map(|q| seq.run(&(q).into()).unwrap())
            .collect();

        for threads in [1usize, 2, 8] {
            let ctx = format!("{strategy:?}/{policy:?}/threads={threads}");
            let mut bat = manager_for(&ds, strategy, policy, budget, threads);
            bat.preload_best().unwrap();
            let mut bat_results = Vec::with_capacity(queries.len());
            for window in queries.chunks(9) {
                bat_results.extend(bat.run_batch(&QueryRequest::batch(window)).unwrap());
            }
            assert_eq!(bat_results.len(), seq_results.len());
            for (i, (s, b)) in seq_results.iter().zip(&bat_results).enumerate() {
                let ctx = format!("{ctx}, query {i}");
                assert_data_bit_identical(&s.data, &b.data, &ctx);
                assert_metrics_identical(&s.metrics, &b.metrics, &ctx);
            }
            assert_caches_identical(&seq, &bat, &ctx);
            assert_sessions_identical(seq.session(), bat.session(), &ctx);
        }
    }
}

#[test]
fn no_aggregation_batch_equals_sequential() {
    assert_equivalence_for(Strategy::NoAggregation);
}

#[test]
fn esm_batch_equals_sequential() {
    assert_equivalence_for(Strategy::Esm);
}

#[test]
fn esmc_batch_equals_sequential() {
    assert_equivalence_for(Strategy::Esmc { node_budget: None });
}

#[test]
fn esmc_bounded_batch_equals_sequential() {
    assert_equivalence_for(Strategy::Esmc {
        node_budget: Some(64),
    });
}

#[test]
fn vcm_batch_equals_sequential() {
    assert_equivalence_for(Strategy::Vcm);
}

#[test]
fn vcmc_batch_equals_sequential() {
    assert_equivalence_for(Strategy::Vcmc);
}

/// The AVG dual-cube wrapper preserves equivalence: batching both the SUM
/// and COUNT cubes yields bit-identical averages to a sequential loop.
#[test]
fn avg_batch_equals_sequential() {
    let ds = dataset();
    let queries = stream_queries(&ds, 24, 4_000);
    let builder = || {
        CacheManagerBuilder::new()
            .strategy(Strategy::Vcmc)
            .policy(PolicyKind::TwoLevel)
            .cache_bytes(900 * PAPER_TUPLE_BYTES)
    };
    let config = builder().config().unwrap();
    let batched = builder().threads(4).config().unwrap();
    let mut seq = AvgCache::new(ds.fact.clone(), BackendCostModel::default(), config).unwrap();
    let mut bat = AvgCache::new(ds.fact.clone(), BackendCostModel::default(), batched).unwrap();
    seq.preload_best().unwrap();
    bat.preload_best().unwrap();
    let seq_results: Vec<_> = queries.iter().map(|q| seq.execute(q).unwrap()).collect();
    let bat_results = bat.execute_batch(&queries).unwrap();
    assert_eq!(seq_results.len(), bat_results.len());
    for (i, ((sd, sm), (bd, bm))) in seq_results.iter().zip(&bat_results).enumerate() {
        let ctx = format!("avg query {i}");
        assert_data_bit_identical(sd, bd, &ctx);
        assert_eq!(sm.complete_hit(), bm.complete_hit(), "{ctx}: complete_hit");
        assert_eq!(
            sm.total_ms().to_bits(),
            bm.total_ms().to_bits(),
            "{ctx}: total_ms"
        );
    }
}

/// All chunk keys of a grid, across every group-by.
fn all_keys(grid: &ChunkGrid) -> Vec<ChunkKey> {
    grid.schema()
        .lattice()
        .iter_ids()
        .flat_map(|gb| (0..grid.n_chunks(gb)).map(move |c| ChunkKey::new(gb, c)))
        .collect()
}

/// Stress test: many reader threads hammer the immutable `&self` probe
/// phase while a writer inserts and evicts chunks between rounds. After
/// every round the paper's Property 1 oracle must hold for every chunk:
/// `count(c) > 0 ⇔ ESM(c)` — i.e. the count table the concurrent probes
/// read is exactly as trustworthy as an exhaustive search.
#[test]
fn concurrent_probes_with_interleaved_writer_keep_count_oracle() {
    let ds = dataset();
    let mut mgr = manager_for(
        &ds,
        Strategy::Vcm,
        PolicyKind::Benefit,
        4_000 * PAPER_TUPLE_BYTES,
        1,
    );
    let queries = stream_queries(&ds, 24, 99);
    let keys = all_keys(&ds.grid);
    let n_dims = ds.grid.num_dims();

    let cell = |seed: u64| {
        let mut d = ChunkData::new(n_dims);
        d.push(&vec![(seed % 3) as u32; n_dims], seed as f64);
        d
    };

    // Deterministic LCG so the insert/evict schedule is reproducible.
    let mut lcg: u64 = 0x2545_F491_4F6C_DD1D;
    let mut step = || {
        lcg = lcg
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        lcg >> 33
    };

    for round in 0..12 {
        // Writer: mutate cache + tables between probe rounds.
        for _ in 0..6 {
            let r = step();
            let key = keys[r as usize % keys.len()];
            if mgr.cache().contains(&key) {
                mgr.evict_chunk(key);
            } else {
                mgr.insert_chunk(key, cell(r), Origin::Backend, 1.0);
            }
        }

        // Readers: 8 threads probing concurrently through `&self`.
        thread::scope(|s| {
            let mgr = &mgr;
            let queries = &queries;
            for t in 0..8usize {
                s.spawn(move || {
                    for q in queries.iter().cycle().skip(t).take(queries.len()) {
                        let probe = mgr.probe(q);
                        // Plans handed out by a probe may only reference
                        // chunks that are actually cached right now.
                        for plan in probe.plans() {
                            for leaf in &plan.leaves {
                                assert!(
                                    mgr.cache().contains(leaf),
                                    "probe plan references uncached leaf {leaf:?}"
                                );
                            }
                        }
                    }
                });
            }
        });

        // Oracle: VCM count table vs exhaustive search, for every chunk.
        let counts = mgr.counts().expect("VCM maintains a count table");
        for &key in &keys {
            let mut stats = LookupStats::default();
            let esm_says = esm(mgr.cache(), &ds.grid, key, &mut stats).is_some();
            assert_eq!(
                counts.is_computable(key),
                esm_says,
                "round {round}: count oracle violated at {key:?}"
            );
        }
    }
}

/// Probing from many threads is deterministic: every thread sees the very
/// same plans, misses and node counts as a single-threaded probe of the
/// frozen cache state.
#[test]
fn concurrent_probes_are_deterministic() {
    let ds = dataset();
    let mut mgr = manager_for(
        &ds,
        Strategy::Vcmc,
        PolicyKind::TwoLevel,
        2_000 * PAPER_TUPLE_BYTES,
        1,
    );
    mgr.preload_best().unwrap();
    for q in stream_queries(&ds, 8, 11) {
        mgr.run(&(&q).into()).unwrap();
    }

    let probe_queries = stream_queries(&ds, 16, 12);
    let reference: Vec<QueryProbe> = probe_queries.iter().map(|q| mgr.probe(q)).collect();
    thread::scope(|s| {
        let mgr = &mgr;
        let probe_queries = &probe_queries;
        let reference = &reference;
        for _ in 0..8 {
            s.spawn(move || {
                for (q, r) in probe_queries.iter().zip(reference) {
                    let p = mgr.probe(q);
                    assert_eq!(p.missing(), r.missing());
                    assert_eq!(p.version(), r.version());
                    assert_eq!(p.is_complete_hit(), r.is_complete_hit());
                    assert_eq!(p.plans().len(), r.plans().len());
                    for (pa, pb) in p.plans().iter().zip(r.plans()) {
                        assert_eq!(pa.target, pb.target);
                        assert_eq!(pa.leaves, pb.leaves);
                        assert_eq!(pa.cost, pb.cost);
                    }
                }
            });
        }
    });
}
