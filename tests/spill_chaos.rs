//! Chaos tests of the self-healing spill tier, end to end through the
//! public API: fault-rate-0 bit-transparency (answers, metrics, cache
//! contents *and on-disk bytes* identical to a fault-free build, under
//! all five strategies), answers-vs-oracle equality at every fault rate,
//! per-seed determinism across thread counts, and warm restarts over a
//! corrupted checkpoint keeping the count tables consistent.

use aggcache::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A process- and call-unique scratch directory (removed by each test).
fn tmpdir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("aggcache-chaos-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset() -> Dataset {
    SyntheticSpec::new()
        .dim("p", vec![1, 3, 9], vec![1, 3, 3])
        .dim("s", vec![1, 6], vec![1, 2])
        .tuples(900)
        .build()
}

fn backend(ds: &Dataset) -> Backend {
    Backend::new(ds.fact.clone(), AggFn::Sum, BackendCostModel::default())
}

fn chaotic_manager(
    ds: &Dataset,
    strategy: Strategy,
    spill: SpillConfig,
    threads: usize,
) -> CacheManager {
    CacheManager::builder()
        .strategy(strategy)
        .policy(PolicyKind::TwoLevel)
        .cache_bytes(1024) // tight: demotions and promotions stay hot
        .threads(threads)
        .spill(spill)
        .build(backend(ds))
        .unwrap()
}

fn stream(ds: &Dataset, seed: u64, n: usize) -> Vec<QueryRequest> {
    let max_level = ds.grid.geom(ds.fact_gb).level().to_vec();
    let mut s = QueryStream::new(ds.grid.clone(), WorkloadConfig::paper(max_level, seed));
    QueryRequest::batch(&s.take_queries(n))
}

/// Brute-force oracle: the query's chunks straight from a pristine
/// backend, bypassing cache, spill and faults.
fn oracle(ds: &Dataset, q: &Query) -> ChunkData {
    let mut all = ChunkData::new(ds.grid.num_dims());
    for (_, data) in backend(ds).fetch(q.gb, &q.chunks).unwrap().chunks {
        all.append(&data);
    }
    all.sort_by_coords();
    all
}

fn value_bits(data: &ChunkData) -> Vec<u64> {
    data.raw_values().iter().map(|v| v.to_bits()).collect()
}

/// Every regular file under `dir` as name → contents.
fn disk_image(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_file() {
            out.insert(
                path.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&path).unwrap(),
            );
        }
    }
    out
}

/// Fault rate 0 is bit-transparent under every strategy: a session run
/// through the fault-injecting I/O decorator at rate 0 produces the same
/// answers, the same metrics, the same cache contents and — after a
/// checkpoint — byte-identical spill files as a session with no decorator
/// at all.
#[test]
fn rate_zero_is_bit_transparent_for_all_strategies() {
    let strategies = [
        Strategy::NoAggregation,
        Strategy::Esm,
        Strategy::Esmc { node_budget: None },
        Strategy::Vcm,
        Strategy::Vcmc,
    ];
    let ds = dataset();
    let queries = stream(&ds, 21, 40);
    for (i, &strategy) in strategies.iter().enumerate() {
        let plain_dir = tmpdir(&format!("transparent-plain-{i}"));
        let faulty_dir = tmpdir(&format!("transparent-faulty-{i}"));
        let mut plain = chaotic_manager(&ds, strategy, SpillConfig::new(&plain_dir), 1);
        let mut faulty = chaotic_manager(
            &ds,
            strategy,
            SpillConfig::new(&faulty_dir).fault(DiskFaultProfile::uniform(0.0, 0xFEED)),
            1,
        );
        for q in &queries {
            let a = plain.run(q).unwrap();
            let b = faulty.run(q).unwrap();
            assert_eq!(a.data.raw_coords(), b.data.raw_coords());
            assert_eq!(value_bits(&a.data), value_bits(&b.data));
            assert_eq!(
                a.total_virtual_ms().to_bits(),
                b.total_virtual_ms().to_bits()
            );
            assert_eq!(a.spill, b.spill, "strategy {i}: spill accounting drifted");
        }
        assert_eq!(*plain.session_spill(), *faulty.session_spill());
        let pk: Vec<ChunkKey> = plain
            .cache()
            .entries_sorted()
            .iter()
            .map(|(k, _)| *k)
            .collect();
        let fk: Vec<ChunkKey> = faulty
            .cache()
            .entries_sorted()
            .iter()
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(pk, fk, "strategy {i}: RAM populations diverged");
        plain.checkpoint().unwrap();
        faulty.checkpoint().unwrap();
        assert_eq!(
            disk_image(&plain_dir),
            disk_image(&faulty_dir),
            "strategy {i}: on-disk spill bytes diverged at rate 0"
        );
        let _ = std::fs::remove_dir_all(&plain_dir);
        let _ = std::fs::remove_dir_all(&faulty_dir);
    }
}

/// At *any* fault rate every answer equals the brute-force oracle —
/// corruption is quarantined and re-served, never returned.
#[test]
fn answers_equal_oracle_at_every_fault_rate() {
    let ds = dataset();
    let queries = stream(&ds, 33, 60);
    for &rate in &[0.0, 0.1, 0.3, 0.7] {
        let dir = tmpdir("oracle");
        let spill = SpillConfig::new(&dir)
            .fault(DiskFaultProfile::uniform(rate, 0xBAD))
            .scrub_interval_ms(400.0);
        let mut mgr = chaotic_manager(&ds, Strategy::Vcmc, spill, 1);
        for q in &queries {
            let out = mgr.run(q).unwrap_or_else(|e| {
                panic!("rate {rate}: disk faults must never fail a query: {e}")
            });
            let mut got = out.data.clone();
            got.sort_by_coords();
            let want = oracle(&ds, &q.query);
            assert_eq!(got.raw_coords(), want.raw_coords(), "rate {rate}");
            assert_eq!(value_bits(&got), value_bits(&want), "rate {rate}");
        }
        if rate >= 0.3 {
            assert!(
                mgr.session_spill().spill_corrupt > 0,
                "rate {rate}: chaos too gentle to prove anything"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// One chaotic session's full outcome, reduced to comparable bits.
fn chaos_run(ds: &Dataset, seed: u64, threads: usize, tag: &str) -> (Vec<Vec<u64>>, Vec<u64>, u64) {
    let dir = tmpdir(tag);
    let spill = SpillConfig::new(&dir)
        .fault(DiskFaultProfile::uniform(0.3, seed))
        .scrub_interval_ms(300.0);
    let mut mgr = chaotic_manager(ds, Strategy::Vcmc, spill, threads);
    let queries = stream(ds, seed, 50);
    let mut answers = Vec::new();
    let mut totals = Vec::new();
    for batch in queries.chunks(10) {
        for out in mgr.run_batch(batch).unwrap() {
            totals.push(out.total_virtual_ms().to_bits());
            let mut data = out.data;
            data.sort_by_coords();
            answers.push(value_bits(&data));
        }
    }
    let quarantined = mgr.session_spill().spill_quarantined;
    let _ = std::fs::remove_dir_all(&dir);
    (answers, totals, quarantined)
}

/// For a fixed seed the whole chaotic session — answers, virtual totals,
/// quarantine counts — is bit-identical across repeat runs and across
/// thread counts.
#[test]
fn chaos_is_deterministic_per_seed_and_thread_invariant() {
    let ds = dataset();
    for seed in [5u64, 6] {
        let a = chaos_run(&ds, seed, 1, "det-a");
        let b = chaos_run(&ds, seed, 1, "det-b");
        let c = chaos_run(&ds, seed, 4, "det-c");
        assert_eq!(a, b, "seed {seed}: repeat run diverged");
        assert_eq!(a, c, "seed {seed}: thread count changed virtual outcome");
    }
    // Different seeds genuinely vary the fault sequence.
    let x = chaos_run(&ds, 5, 1, "det-x");
    let y = chaos_run(&ds, 6, 1, "det-y");
    assert!(
        x.1 != y.1 || x.2 != y.2,
        "seeds 5 and 6 behaved identically"
    );
}

/// A warm restart over a checkpoint with a corrupted record quarantines
/// the damage, keeps the incrementally maintained count table consistent
/// with a from-scratch rebuild, and still answers correctly.
#[test]
fn warm_restart_after_corrupted_checkpoint_stays_consistent() {
    let ds = dataset();
    let dir = tmpdir("restart");
    {
        let mut first = CacheManager::builder()
            .strategy(Strategy::Vcm)
            .policy(PolicyKind::TwoLevel)
            .cache_bytes(64 * 1024)
            .spill(SpillConfig::new(&dir))
            .build(backend(&ds))
            .unwrap();
        for q in &stream(&ds, 44, 30) {
            first.run(q).unwrap();
        }
        let report = first.checkpoint().unwrap();
        assert!(report.chunks > 1, "need several records to corrupt one");
    }
    // Corrupt one checkpointed chunk file in place (index stays intact).
    let victim = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().and_then(|e| e.to_str()) == Some("chunk"))
        .expect("checkpoint wrote chunk files");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();

    let mut warm = CacheManager::builder()
        .strategy(Strategy::Vcm)
        .policy(PolicyKind::TwoLevel)
        .cache_bytes(64 * 1024)
        .spill(SpillConfig::new(&dir))
        .build(backend(&ds))
        .unwrap();
    assert_eq!(warm.session_spill().spill_corrupt, 1);
    assert_eq!(warm.session_spill().spill_quarantined, 1);
    assert!(warm.session_spill().spill_reads > 0, "rest warm-started");
    // Property 1 after the partial recovery: the incrementally built
    // count table equals one rebuilt from the actual RAM population.
    let rebuilt = CountTable::rebuild_from(warm.grid().clone(), |k| warm.cache().contains(&k));
    rebuilt.assert_same(warm.counts().expect("VCM maintains counts"));
    // And the session still answers every query correctly.
    for q in &stream(&ds, 45, 20) {
        let out = warm.run(q).unwrap();
        let mut got = out.data.clone();
        got.sort_by_coords();
        let want = oracle(&ds, &q.query);
        assert_eq!(got.raw_coords(), want.raw_coords());
        assert_eq!(value_bits(&got), value_bits(&want));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
