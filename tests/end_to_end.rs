//! Full-system integration: the APB-1-shaped benchmark at reduced scale,
//! driven through pre-loading, a locality query stream, every strategy,
//! and both policies — with answers checked against the backend and the
//! acceleration tables cross-checked against a from-scratch rebuild.

use aggcache::prelude::*;

fn dataset() -> Dataset {
    Apb1Config {
        n_tuples: 20_000,
        density: 0.7,
        seed: 99,
    }
    .build()
}

fn run_session(
    dataset: &Dataset,
    strategy: Strategy,
    policy: PolicyKind,
    cache_bytes: usize,
    preload: bool,
    queries: usize,
) -> (CacheManager, u64) {
    let backend = Backend::new(
        dataset.fact.clone(),
        AggFn::Sum,
        BackendCostModel::default(),
    );
    let oracle = Backend::new(
        dataset.fact.clone(),
        AggFn::Sum,
        BackendCostModel::default(),
    );
    let mut mgr = CacheManager::builder()
        .strategy(strategy)
        .policy(policy)
        .cache_bytes(cache_bytes)
        .build(backend)
        .unwrap();
    if preload {
        mgr.preload_best().unwrap();
    }
    let max_level = dataset.grid.geom(dataset.fact_gb).level().to_vec();
    let mut stream = QueryStream::new(dataset.grid.clone(), WorkloadConfig::paper(max_level, 77));
    let mut checked = 0u64;
    for i in 0..queries {
        let (q, kind) = stream.next_with_kind();
        let mut got = mgr.run(&(&q).into()).unwrap();
        // Spot-check every 5th answer against the backend oracle (checking
        // all of them is covered by the smaller oracle test).
        if i % 5 == 0 {
            got.data.sort_by_coords();
            let mut expected = ChunkData::new(dataset.grid.num_dims());
            for (_, d) in oracle.fetch(q.gb, &q.chunks).unwrap().chunks {
                expected.append(&d);
            }
            expected.sort_by_coords();
            assert_eq!(got.data, expected, "query #{i} ({kind:?}) {q:?}");
            checked += 1;
        }
    }
    (mgr, checked)
}

#[test]
fn apb_stream_all_strategies_all_policies() {
    let ds = dataset();
    for strategy in [
        Strategy::NoAggregation,
        Strategy::Esm,
        Strategy::Vcm,
        Strategy::Vcmc,
    ] {
        for policy in [PolicyKind::Lru, PolicyKind::Benefit, PolicyKind::TwoLevel] {
            let (mgr, checked) = run_session(
                &ds,
                strategy,
                policy,
                200_000,
                policy == PolicyKind::TwoLevel,
                40,
            );
            assert!(checked >= 8);
            assert_eq!(mgr.session().queries, 40);
        }
    }
}

#[test]
fn vcm_tables_consistent_after_apb_stream() {
    let ds = dataset();
    let (mgr, _) = run_session(&ds, Strategy::Vcm, PolicyKind::TwoLevel, 120_000, true, 60);
    let cached: std::collections::HashSet<ChunkKey> = mgr.cache().keys().collect();
    let rebuilt = CountTable::rebuild_from(ds.grid.clone(), |k| cached.contains(&k));
    mgr.counts().unwrap().assert_same(&rebuilt);
}

#[test]
fn vcmc_costs_consistent_after_apb_stream() {
    let ds = dataset();
    let (mgr, _) = run_session(&ds, Strategy::Vcmc, PolicyKind::TwoLevel, 120_000, true, 60);
    // Count part must agree with rebuild; cost part must match plan leaves.
    let cached: std::collections::HashSet<ChunkKey> = mgr.cache().keys().collect();
    let rebuilt = CountTable::rebuild_from(ds.grid.clone(), |k| cached.contains(&k));
    mgr.counts().unwrap().assert_same(&rebuilt);
    let costs = mgr.costs().unwrap();
    let lattice = ds.grid.schema().lattice().clone();
    let mut inspected = 0;
    for gb in lattice.iter_ids_under(ds.fact_gb) {
        for chunk in (0..ds.grid.n_chunks(gb)).step_by(7) {
            let key = ChunkKey::new(gb, chunk);
            if let Some(cost) = costs.cost(key) {
                let outcome = mgr.lookup_chunk(key);
                let plan = outcome.plan.expect("computable");
                assert_eq!(plan.cost, u64::from(cost));
                let leaf_sum: u64 = plan
                    .leaves
                    .iter()
                    .map(|l| mgr.cache().peek(l).expect("leaf cached").data.len() as u64)
                    .sum();
                assert_eq!(leaf_sum, plan.cost, "{key:?}");
                inspected += 1;
            }
        }
    }
    assert!(
        inspected >= 10,
        "enough computable chunks inspected: {inspected}"
    );
}

#[test]
fn preload_then_aggregated_queries_never_touch_backend() {
    let ds = dataset();
    let backend = Backend::new(ds.fact.clone(), AggFn::Sum, BackendCostModel::default());
    // Budget comfortably above the base table: pre-load takes the fact
    // level and every answerable query becomes a complete hit.
    let mut mgr = CacheManager::builder()
        .strategy(Strategy::Vcmc)
        .policy(PolicyKind::TwoLevel)
        .cache_bytes(4_000_000)
        .build(backend)
        .unwrap();
    let report = mgr.preload_best().unwrap().unwrap();
    assert_eq!(report.gb, ds.fact_gb);
    let lattice = ds.grid.schema().lattice().clone();
    for gb in lattice.iter_ids_under(ds.fact_gb).step_by(11) {
        let q = Query::new(gb, vec![0]);
        let m = mgr.run(&(&q).into()).unwrap().metrics;
        assert!(m.complete_hit, "{gb:?}");
    }
    assert_eq!(mgr.session().backend_tuples, 0);
}

#[test]
fn value_queries_match_filtered_oracle() {
    let ds = dataset();
    let grid = ds.grid.clone();
    let lattice = grid.schema().lattice().clone();
    let oracle = Backend::new(ds.fact.clone(), AggFn::Sum, BackendCostModel::default());
    let mut mgr = CacheManager::builder()
        .strategy(Strategy::Vcmc)
        .policy(PolicyKind::TwoLevel)
        .cache_bytes(2_000_000)
        .build(Backend::new(
            ds.fact.clone(),
            AggFn::Sum,
            BackendCostModel::default(),
        ))
        .unwrap();
    let gb = lattice.id_of(&[2, 1, 2, 0, 0]).unwrap();
    let schema = grid.schema().clone();
    let level = [2u8, 1, 2, 0, 0];
    // A few value windows across the space.
    for shift in 0..4u32 {
        let ranges: Vec<(u32, u32)> = (0..schema.num_dims())
            .map(|d| {
                let card = schema.dimension(d).cardinality(level[d]);
                let lo = (shift * card / 6).min(card - 1);
                let hi = (lo + card.div_ceil(2)).min(card);
                (lo, hi.max(lo + 1))
            })
            .collect();
        let vq = ValueQuery::new(gb, ranges);
        let mut got = mgr.execute_values(&vq).unwrap().data;
        got.sort_by_coords();
        // Oracle: full chunks, filtered.
        let cq = vq.to_chunk_query(&grid);
        let mut all = ChunkData::new(grid.num_dims());
        for (_, d) in oracle.fetch(cq.gb, &cq.chunks).unwrap().chunks {
            all.append(&d);
        }
        let mut expected = vq.filter(&all);
        expected.sort_by_coords();
        assert_eq!(got, expected, "shift {shift}");
        assert!(got.iter().all(|(c, _)| vq.contains(c)));
    }
}
