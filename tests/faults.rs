//! Chaos suite for the fault-tolerant backend stack (DESIGN.md §8).
//!
//! The contract under test: wrapping the simulated backend in the full
//! decorator stack — `RetryingBackend` over `FaultInjectingBackend` —
//! must be *bit-transparent* at fault rate 0 (identical answers, virtual
//! times, cache contents and session totals), fully deterministic per
//! fault seed at any thread count, and must never corrupt an answer or
//! the replacement bookkeeping no matter how many fetches fail.

use aggcache::prelude::*;

/// The concurrency suite's 3-dimensional cube: enough lattice structure
/// for drill-downs, roll-ups and computable hits, small enough to sweep.
fn dataset() -> Dataset {
    SyntheticSpec::new()
        .dim("product", vec![1, 3, 12], vec![1, 3, 6])
        .dim("store", vec![1, 8], vec![1, 4])
        .dim("time", vec![1, 4], vec![1, 2])
        .tuples(2_500)
        .seed(7)
        .build()
}

/// A deterministic paper-mix query stream over the dataset's grid.
fn stream_queries(ds: &Dataset, n: usize, seed: u64) -> Vec<Query> {
    let max_level = ds.grid.geom(ds.fact_gb).level().to_vec();
    let mut stream = QueryStream::new(ds.grid.clone(), WorkloadConfig::paper(max_level, seed));
    stream.take_queries(n)
}

fn raw_backend(ds: &Dataset) -> Backend {
    Backend::new(ds.fact.clone(), AggFn::Sum, BackendCostModel::default())
}

fn manager_with(
    backend: impl BackendSource + 'static,
    strategy: Strategy,
    cache_bytes: usize,
    threads: usize,
) -> CacheManager {
    CacheManager::builder()
        .strategy(strategy)
        .policy(PolicyKind::TwoLevel)
        .cache_bytes(cache_bytes)
        .threads(threads)
        .build(backend)
        .unwrap()
}

/// The full decorator stack at the given fault rate and seed.
fn decorated_manager(
    ds: &Dataset,
    strategy: Strategy,
    cache_bytes: usize,
    threads: usize,
    rate: f64,
    fault_seed: u64,
) -> CacheManager {
    let faulty =
        FaultInjectingBackend::new(raw_backend(ds), FaultProfile::uniform(rate, fault_seed))
            .unwrap();
    let retrying = RetryingBackend::new(
        faulty,
        RetryPolicy {
            max_attempts: 3,
            seed: fault_seed,
            ..RetryPolicy::default()
        },
    )
    .unwrap();
    manager_with(retrying, strategy, cache_bytes, threads)
}

fn assert_data_bit_identical(a: &ChunkData, b: &ChunkData, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: cell counts differ");
    for i in 0..a.len() {
        assert_eq!(a.coords_of(i), b.coords_of(i), "{ctx}: coords of cell {i}");
        assert_eq!(
            a.value_of(i).to_bits(),
            b.value_of(i).to_bits(),
            "{ctx}: value bits of cell {i}"
        );
    }
}

fn sorted_keys(mgr: &CacheManager) -> Vec<ChunkKey> {
    let mut keys: Vec<ChunkKey> = mgr.cache().keys().collect();
    keys.sort_by_key(|k| (k.gb.index(), k.chunk));
    keys
}

/// Everything deterministic about one executed query, bit-exact. Failed
/// queries are captured by the chunks the error named.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Answered {
        complete_hit: bool,
        chunks_degraded: usize,
        total_ms_bits: u64,
        cell_bits: Vec<(Vec<u32>, u64)>,
    },
    Unavailable {
        chunks: Vec<u64>,
    },
}

fn run_stream(mgr: &mut CacheManager, queries: &[Query]) -> Vec<Outcome> {
    queries
        .iter()
        .map(|q| match mgr.run(&(q).into()) {
            Ok(r) => Outcome::Answered {
                complete_hit: r.metrics.complete_hit,
                chunks_degraded: r.metrics.chunks_degraded,
                total_ms_bits: r.metrics.total_ms().to_bits(),
                cell_bits: (0..r.data.len())
                    .map(|i| (r.data.coords_of(i).to_vec(), r.data.value_of(i).to_bits()))
                    .collect(),
            },
            Err(CacheError::BackendUnavailable { chunks, .. }) => Outcome::Unavailable { chunks },
            Err(e) => panic!("unexpected error under faults: {e}"),
        })
        .collect()
}

/// A rate-0 `FaultInjectingBackend` under a `RetryingBackend` must be
/// invisible: per-query answers and virtual-time metrics, final cache
/// contents and session totals all bit-identical to the undecorated
/// backend, for every lookup strategy.
#[test]
fn zero_fault_rate_is_bit_transparent() {
    let ds = dataset();
    let queries = stream_queries(&ds, 36, 2_000);
    let budget = 600 * PAPER_TUPLE_BYTES;
    for strategy in [
        Strategy::NoAggregation,
        Strategy::Esm,
        Strategy::Esmc {
            node_budget: Some(128),
        },
        Strategy::Vcm,
        Strategy::Vcmc,
    ] {
        let ctx = format!("{strategy:?}");
        let mut plain = manager_with(raw_backend(&ds), strategy, budget, 1);
        let mut stacked = decorated_manager(&ds, strategy, budget, 1, 0.0, 0xFA57);
        plain.preload_best().unwrap();
        stacked.preload_best().unwrap();

        for (i, q) in queries.iter().enumerate() {
            let ctx = format!("{ctx}, query {i}");
            let a = plain.run(&(q).into()).unwrap();
            let b = stacked.run(&(q).into()).unwrap();
            assert_data_bit_identical(&a.data, &b.data, &ctx);
            assert_eq!(
                a.metrics.total_ms().to_bits(),
                b.metrics.total_ms().to_bits(),
                "{ctx}: total virtual ms ({} vs {})",
                a.metrics.total_ms(),
                b.metrics.total_ms(),
            );
            assert_eq!(
                a.metrics.backend_virtual_ms.to_bits(),
                b.metrics.backend_virtual_ms.to_bits(),
                "{ctx}: backend virtual ms"
            );
            assert_eq!(a.metrics.complete_hit, b.metrics.complete_hit, "{ctx}");
            assert_eq!(b.metrics.chunks_degraded, 0, "{ctx}: nothing degrades");
        }

        assert_eq!(
            sorted_keys(&plain),
            sorted_keys(&stacked),
            "{ctx}: cache keys"
        );
        for key in sorted_keys(&plain) {
            assert_data_bit_identical(
                &plain.cache().peek(&key).unwrap().data,
                &stacked.cache().peek(&key).unwrap().data,
                &format!("{ctx}: cached chunk {key:?}"),
            );
        }
        let (sa, sb) = (plain.session(), stacked.session());
        assert_eq!(sa.queries, sb.queries, "{ctx}");
        assert_eq!(sa.complete_hits, sb.complete_hits, "{ctx}");
        assert_eq!(
            sa.total_ms.to_bits(),
            sb.total_ms.to_bits(),
            "{ctx}: session total_ms"
        );
        assert_eq!(
            sa.backend_virtual_ms.to_bits(),
            sb.backend_virtual_ms.to_bits(),
            "{ctx}: session backend_virtual_ms"
        );
        assert_eq!(
            sb.degraded_queries, 0,
            "{ctx}: no degraded queries at rate 0"
        );
    }
}

/// For each fault seed, two identical faulty runs produce identical
/// per-query outcomes (answers, virtual times, failures) and identical
/// session totals — at 1 thread and at 4 (worker threads shard the
/// aggregation wall-clock only, never the virtual-time results).
#[test]
fn faulty_runs_are_deterministic_per_seed() {
    let ds = dataset();
    let queries = stream_queries(&ds, 40, 2_000);
    let budget = 600 * PAPER_TUPLE_BYTES;
    let strategy = Strategy::Esmc {
        node_budget: Some(64),
    };
    for fault_seed in [1u64, 7, 0xFA57] {
        let run = |threads: usize| {
            let mut mgr = decorated_manager(&ds, strategy, budget, threads, 0.4, fault_seed);
            let _ = mgr.preload_best();
            let outcomes = run_stream(&mut mgr, &queries);
            let totals = (
                mgr.session().queries,
                mgr.session().degraded_queries,
                mgr.session().chunks_degraded,
                mgr.session().total_ms.to_bits(),
                mgr.session().backend_virtual_ms.to_bits(),
            );
            (outcomes, totals, sorted_keys(&mgr))
        };
        let first = run(1);
        for threads in [1usize, 4] {
            let again = run(threads);
            assert_eq!(
                first, again,
                "seed {fault_seed:#x}: outcomes diverged at {threads} threads"
            );
        }
    }
}

/// Faults change availability and virtual cost, never values: every query
/// a faulty manager *does* answer carries exactly the cells the healthy
/// manager returns for the same query.
#[test]
fn fault_injection_never_corrupts_answers() {
    let ds = dataset();
    let queries = stream_queries(&ds, 60, 3_000);
    // Tight budget: the cache churns, so fetches (and thus outages) keep
    // happening throughout the stream.
    let budget = 200 * PAPER_TUPLE_BYTES;
    let strategy = Strategy::Esmc {
        node_budget: Some(64),
    };
    let oracle = raw_backend(&ds);
    let mut mgr = decorated_manager(&ds, strategy, budget, 1, 0.5, 0xC0A5);
    let _ = mgr.preload_best();
    let mut answered = 0u64;
    let mut failed = 0u64;
    for (i, q) in queries.iter().enumerate() {
        let mut expected = ChunkData::new(ds.grid.num_dims());
        for (_, data) in oracle.fetch(q.gb, &q.chunks).unwrap().chunks {
            expected.append(&data);
        }
        expected.sort_by_coords();
        match mgr.run(&(q).into()) {
            Ok(mut r) => {
                answered += 1;
                r.data.sort_by_coords();
                assert_eq!(r.data, expected, "query #{i} answer corrupted under faults");
            }
            Err(CacheError::BackendUnavailable { .. }) => failed += 1,
            Err(e) => panic!("unexpected error under faults: {e}"),
        }
    }
    assert_eq!(answered + failed, queries.len() as u64);
    assert!(
        answered > 0,
        "fault rate 0.5 with retries must answer some queries"
    );
    assert!(
        failed > 0,
        "fault rate 0.5 should exhaust retries at least once"
    );
}

/// No lost or duplicated chunk inserts under heavy faults: after a faulty
/// stream full of failed fetches and aborted queries, the virtual-count
/// tables rebuilt from the surviving cache contents must match the
/// incrementally maintained ones exactly.
#[test]
fn count_tables_stay_consistent_under_faults() {
    let ds = dataset();
    let queries = stream_queries(&ds, 80, 4_000);
    // Tight enough that the stream keeps fetching (and failing) all the
    // way through, with eviction churn between failures.
    let budget = 200 * PAPER_TUPLE_BYTES;
    for fault_seed in [5u64, 0xFA57] {
        let mut mgr = decorated_manager(&ds, Strategy::Vcmc, budget, 1, 0.5, fault_seed);
        let _ = mgr.preload_best();
        let mut failed = 0u64;
        for q in &queries {
            match mgr.run(&(q).into()) {
                Ok(_) => {}
                Err(CacheError::BackendUnavailable { .. }) => failed += 1,
                Err(e) => panic!("unexpected error under faults: {e}"),
            }
        }
        assert!(
            failed > 0,
            "seed {fault_seed:#x}: the stream should see outages"
        );
        let cached: Vec<ChunkKey> = mgr.cache().keys().collect();
        let reference = CountTable::rebuild_from(mgr.grid().clone(), |k| cached.contains(&k));
        mgr.counts().unwrap().assert_same(&reference);
    }
}

/// A permanent outage over a partially warm cache: queries are either
/// served degraded from cached data (all-or-nothing) or fail typed — and
/// a failed query leaves the cache untouched.
#[test]
fn permanent_outage_serves_degraded_or_fails_cleanly() {
    let ds = dataset();
    let queries = stream_queries(&ds, 40, 5_000);
    // Holds most of the base cube, but not all of it: some roll-ups stay
    // fully coverable (degraded-servable), some chunks are simply gone.
    let budget = 300 * PAPER_TUPLE_BYTES;
    let strategy = Strategy::Esmc {
        node_budget: Some(64),
    };
    let faulty =
        FaultInjectingBackend::new(raw_backend(&ds), FaultProfile::fail_then_recover(u64::MAX))
            .unwrap();
    let retrying = RetryingBackend::new(
        faulty,
        RetryPolicy {
            max_attempts: 2,
            seed: 9,
            ..RetryPolicy::default()
        },
    )
    .unwrap();
    let mut down = manager_with(retrying, strategy, budget, 1);
    assert!(down.preload_best().is_err(), "preload needs the backend");

    // Seed part of the base cube from a healthy twin — the budget holds
    // only a fraction of it, so some chunks stay degraded-servable and
    // some are genuinely gone.
    let base = ds.grid.schema().lattice().base();
    let healthy = raw_backend(&ds);
    for (chunk, data) in healthy.fetch_group_by(base).unwrap().chunks {
        down.insert_chunk(ChunkKey::new(base, chunk), data, Origin::Backend, 1.0);
    }

    let mut degraded = 0u64;
    let mut failed = 0u64;
    for q in &queries {
        match down.run(&(q).into()) {
            Ok(r) => {
                assert_eq!(
                    r.metrics.chunks_degraded, r.metrics.chunks_missed,
                    "with the backend down every answered miss is degraded"
                );
                degraded += u64::from(r.metrics.chunks_degraded > 0);
            }
            Err(CacheError::BackendUnavailable { chunks, .. }) => {
                failed += 1;
                assert!(!chunks.is_empty(), "the error names the unservable chunks");
                // All-or-nothing: the failed query admitted none of the
                // chunks it could not serve (no partial phantom inserts).
                for &chunk in &chunks {
                    assert!(
                        !down.cache().contains(&ChunkKey::new(q.gb, chunk)),
                        "failed chunk {chunk} of {:?} must not be cached",
                        q.gb
                    );
                }
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        degraded > 0,
        "a warm cache must rescue some queries degraded"
    );
    assert!(
        failed > 0,
        "a partial cache with a dead backend must fail some"
    );
    assert_eq!(down.session().degraded_queries, degraded);
}
