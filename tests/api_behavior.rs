//! Focused behavioural tests of public-API corners not covered by the
//! larger oracle/property suites.

use aggcache::prelude::*;
use std::sync::Arc;

fn tiny_grid() -> Arc<ChunkGrid> {
    let schema = Arc::new(
        Schema::new(
            vec![
                Dimension::balanced("a", vec![1, 2, 8]).unwrap(),
                Dimension::flat("b", 4).unwrap(),
            ],
            "m",
        )
        .unwrap(),
    );
    Arc::new(ChunkGrid::build(schema, &[vec![1, 2, 4], vec![1, 2]]).unwrap())
}

mod workload_bias {
    use super::*;
    use aggcache::workload::{QueryMix, QueryStream, WorkloadConfig};

    fn avg_depth(bias: f64) -> f64 {
        let grid = tiny_grid();
        let max = grid.schema().base_level();
        let mut stream = QueryStream::new(
            grid.clone(),
            WorkloadConfig {
                mix: QueryMix::random_only(),
                max_level: max,
                max_span: 1,
                aggregated_bias: bias,
                level_zipf: None,
                seed: 31,
            },
        );
        let lattice = grid.schema().lattice().clone();
        let mut total = 0u32;
        const N: u32 = 600;
        for _ in 0..N {
            let (q, _) = stream.next_with_kind();
            total += lattice
                .level_of(q.gb)
                .iter()
                .map(|&l| u32::from(l))
                .sum::<u32>();
        }
        f64::from(total) / f64::from(N)
    }

    /// Lower bias values must produce more aggregated (shallower) levels.
    #[test]
    fn aggregated_bias_shifts_level_distribution() {
        let biased = avg_depth(0.3);
        let uniform = avg_depth(1.0);
        assert!(
            biased + 0.3 < uniform,
            "bias 0.3 depth {biased:.2} should be well below uniform {uniform:.2}"
        );
    }
}

mod chunk_data {
    use super::*;

    #[test]
    fn append_concatenates() {
        let mut a = ChunkData::new(2);
        a.push(&[1, 1], 1.0);
        let mut b = ChunkData::new(2);
        b.push(&[2, 2], 2.0);
        b.push(&[3, 3], 3.0);
        a.append(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.coords_of(2), &[3, 3]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn append_rejects_different_arity() {
        let mut a = ChunkData::new(2);
        let b = ChunkData::new(3);
        a.append(&b);
    }

    #[test]
    fn heap_bytes_shrink() {
        let mut d = ChunkData::with_capacity(2, 100);
        d.push(&[0, 0], 1.0);
        let before = d.heap_bytes();
        d.shrink_to_fit();
        assert!(d.heap_bytes() < before);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn value_of_mut_updates() {
        let mut d = ChunkData::new(1);
        d.push(&[0], 1.0);
        *d.value_of_mut(0) = 9.0;
        assert_eq!(d.value_of(0), 9.0);
    }
}

mod cache_behavior {
    use super::*;

    fn cell() -> ChunkData {
        let mut d = ChunkData::new(1);
        d.push(&[0], 1.0);
        d
    }

    #[test]
    fn peek_does_not_count_hits() {
        let mut c = ChunkCache::new(10_000, PolicyKind::Benefit);
        let k = ChunkKey::new(GroupById(0), 1);
        c.insert(k, cell(), Origin::Backend, 1.0);
        assert!(c.peek(&k).is_some());
        assert_eq!(c.hits(), 0);
        assert!(c.get(&k).is_some());
        assert_eq!(c.hits(), 1);
        assert!(c.get(&ChunkKey::new(GroupById(0), 2)).is_none());
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn boost_is_noop_under_benefit_policy() {
        // Documented: group boosting is a two-level mechanism.
        let mut c = ChunkCache::new(2 * 20, PolicyKind::Benefit);
        let k1 = ChunkKey::new(GroupById(0), 1);
        let k2 = ChunkKey::new(GroupById(0), 2);
        c.insert(k1, cell(), Origin::Backend, 1.0);
        c.insert(k2, cell(), Origin::Backend, 1.0);
        let group = [k1];
        c.boost_group(group.iter(), 1e6);
        // Eviction order is unaffected by the boost: the sweep still
        // starts from the hand, evicting k1 first.
        let out = c.insert(ChunkKey::new(GroupById(0), 3), cell(), Origin::Backend, 1.0);
        assert!(out.admitted);
        assert_eq!(out.evicted, vec![k1]);
    }
}

mod lattice_api {
    use super::*;

    #[test]
    fn iter_levels_is_id_ordered() {
        let grid = tiny_grid();
        let lattice = grid.schema().lattice().clone();
        let pairs: Vec<_> = lattice.iter_levels().collect();
        assert_eq!(pairs.len() as u32, lattice.num_group_bys());
        for (i, (id, level)) in pairs.iter().enumerate() {
            assert_eq!(id.0 as usize, i);
            assert_eq!(&lattice.level_of(*id), level);
        }
    }

    #[test]
    fn digit_matches_level_of() {
        let grid = tiny_grid();
        let lattice = grid.schema().lattice().clone();
        for (id, level) in lattice.iter_levels() {
            for (d, &l) in level.iter().enumerate() {
                assert_eq!(lattice.digit(id, d), l);
            }
        }
    }
}

mod backend_api {
    use super::*;

    #[test]
    fn fetch_with_no_chunks_costs_only_overhead() {
        let ds = SyntheticSpec::new()
            .dim("a", vec![1, 4], vec![1, 2])
            .tuples(20)
            .build();
        let backend = Backend::new(ds.fact, AggFn::Sum, BackendCostModel::default());
        let r = backend
            .fetch(ds.grid.schema().lattice().base(), &[])
            .unwrap();
        assert!(r.chunks.is_empty());
        assert_eq!(r.tuples_scanned, 0);
        assert_eq!(r.virtual_ms, backend.cost_model().per_query_ms);
    }

    #[test]
    fn duplicate_chunk_requests_are_answered_per_request() {
        let ds = SyntheticSpec::new()
            .dim("a", vec![1, 4], vec![1, 2])
            .tuples(40)
            .build();
        let backend = Backend::new(ds.fact, AggFn::Sum, BackendCostModel::default());
        let base = ds.grid.schema().lattice().base();
        let r = backend.fetch(base, &[0, 0]).unwrap();
        assert_eq!(r.chunks.len(), 2);
        assert_eq!(r.chunks[0].1, r.chunks[1].1);
    }
}

mod manager_api {
    use super::*;

    #[test]
    fn evict_chunk_reflects_in_counts() {
        let ds = SyntheticSpec::new()
            .dim("a", vec![1, 4], vec![1, 2])
            .tuples(40)
            .build();
        let grid = ds.grid.clone();
        let backend = Backend::new(ds.fact, AggFn::Sum, BackendCostModel::default());
        let mut mgr = CacheManager::builder()
            .strategy(Strategy::Vcm)
            .policy(PolicyKind::TwoLevel)
            .cache_bytes(usize::MAX >> 1)
            .build(backend)
            .unwrap();
        let base = grid.schema().lattice().base();
        let top = grid.schema().lattice().top();
        mgr.run(&(&Query::full_group_by(&grid, base)).into())
            .unwrap();
        assert!(mgr.counts().unwrap().is_computable(ChunkKey::new(top, 0)));
        mgr.evict_chunk(ChunkKey::new(base, 0));
        assert!(!mgr.counts().unwrap().is_computable(ChunkKey::new(top, 0)));
        // Evicting a non-cached chunk is a no-op.
        assert_eq!(mgr.evict_chunk(ChunkKey::new(base, 0)), 0);
    }

    #[test]
    fn queries_below_fact_level_error() {
        // Fact data at an aggregated level: asking for more detail fails
        // loudly instead of returning wrong data.
        let grid = tiny_grid();
        let gb = grid.schema().lattice().id_of(&[1, 0]).unwrap();
        let dataset = Dataset::generate(grid.clone(), gb, 10, 1.0, 4);
        let backend = Backend::new(dataset.fact, AggFn::Sum, BackendCostModel::default());
        let mut mgr = CacheManager::builder()
            .strategy(Strategy::Vcm)
            .policy(PolicyKind::TwoLevel)
            .cache_bytes(usize::MAX >> 1)
            .build(backend)
            .unwrap();
        let base = grid.schema().lattice().base();
        assert!(mgr.run(&(&Query::new(base, vec![0])).into()).is_err());
        assert!(mgr.run(&(&Query::new(gb, vec![0])).into()).is_ok());
    }

    #[test]
    fn error_surface_is_typed_through_run_and_run_batch() {
        use aggcache::chunks::ChunkError;
        use aggcache::store::StoreError;

        // Builder misconfiguration: typed ConfigError variants.
        let build = |budget: Option<usize>, threads: usize, node_budget: Option<u64>| {
            let ds = SyntheticSpec::new()
                .dim("a", vec![1, 4], vec![1, 2])
                .tuples(20)
                .build();
            let backend = Backend::new(ds.fact, AggFn::Sum, BackendCostModel::default());
            let mut b = CacheManager::builder()
                .strategy(Strategy::Esmc { node_budget })
                .policy(PolicyKind::TwoLevel)
                .threads(threads);
            if let Some(bytes) = budget {
                b = b.cache_bytes(bytes);
            }
            b.build(backend)
        };
        assert!(matches!(
            build(None, 1, None),
            Err(ConfigError::MissingCacheBudget)
        ));
        assert!(matches!(
            build(Some(0), 1, None),
            Err(ConfigError::ZeroCacheBudget)
        ));
        assert!(matches!(
            build(Some(1024), 0, None),
            Err(ConfigError::ZeroThreads)
        ));
        assert!(matches!(
            build(Some(1024), 1, Some(0)),
            Err(ConfigError::ZeroNodeBudget)
        ));

        // A query below the fact level surfaces StoreError::NotComputable
        // through run *and* run_batch (one bad query fails its batch).
        let grid = tiny_grid();
        let gb = grid.schema().lattice().id_of(&[1, 0]).unwrap();
        let dataset = Dataset::generate(grid.clone(), gb, 10, 1.0, 4);
        let backend = Backend::new(dataset.fact, AggFn::Sum, BackendCostModel::default());
        let mut mgr = CacheManager::builder()
            .strategy(Strategy::Vcm)
            .policy(PolicyKind::TwoLevel)
            .cache_bytes(usize::MAX >> 1)
            .build(backend)
            .unwrap();
        let base = grid.schema().lattice().base();
        assert!(matches!(
            mgr.run(&(&Query::new(base, vec![0])).into()),
            Err(CacheError::Store(StoreError::NotComputable { .. }))
        ));
        let batch = [
            QueryRequest::from(&Query::new(gb, vec![0])),
            QueryRequest::from(&Query::new(base, vec![0])),
        ];
        assert!(matches!(
            mgr.run_batch(&batch),
            Err(CacheError::Store(StoreError::NotComputable { .. }))
        ));

        // Malformed delta batches: typed CacheError::Delta at the ingestion
        // boundary, with the session left untouched.
        let version = mgr.version();
        let mut bad_arity = DeltaBatch::new();
        bad_arity.insert(&[1, 0, 0], 1.0);
        assert!(matches!(
            mgr.ingest(&bad_arity),
            Err(CacheError::Delta(ChunkError::BadCellArity {
                record: 0,
                expected: 2,
                got: 3,
            }))
        ));
        let mut out_of_range = DeltaBatch::new();
        out_of_range.delete(&[0, 99], 1.0);
        assert!(matches!(
            mgr.ingest(&out_of_range),
            Err(CacheError::Delta(ChunkError::CellOutOfRange {
                record: 0,
                ..
            }))
        ));
        assert_eq!(mgr.version(), version);
        assert_eq!(*mgr.session_updates(), UpdateMetrics::default());

        // Spill operations without a spill tier: typed SpillError that
        // converts into the unified surface.
        assert!(mgr.checkpoint().is_err());
        let e: CacheError = aggcache::store::SpillError::NotAttached.into();
        assert!(matches!(
            e,
            CacheError::Spill(aggcache::store::SpillError::NotAttached)
        ));
    }

    #[test]
    fn permanent_outage_on_a_cold_cache_is_backend_unavailable() {
        let ds = SyntheticSpec::new()
            .dim("a", vec![1, 4], vec![1, 2])
            .tuples(40)
            .build();
        let grid = ds.grid.clone();
        let backend = Backend::new(ds.fact, AggFn::Sum, BackendCostModel::default());
        let down = FaultInjectingBackend::new(backend, FaultProfile::fail_then_recover(u64::MAX))
            .expect("profile is valid");
        let mut mgr = CacheManager::builder()
            .strategy(Strategy::Vcm)
            .policy(PolicyKind::TwoLevel)
            .cache_bytes(usize::MAX >> 1)
            .build(down)
            .unwrap();
        // Nothing cached, nothing computable: the typed error names the
        // group-by and the chunks that had no answer.
        let base = grid.schema().lattice().base();
        match mgr.run(&(&Query::full_group_by(&grid, base)).into()) {
            Err(CacheError::BackendUnavailable { gb, chunks }) => {
                assert_eq!(gb, base);
                assert!(!chunks.is_empty());
            }
            other => panic!("expected BackendUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn preload_none_when_nothing_fits() {
        let ds = SyntheticSpec::new()
            .dim("a", vec![1, 4], vec![1, 2])
            .tuples(40)
            .build();
        let backend = Backend::new(ds.fact, AggFn::Sum, BackendCostModel::default());
        // Budget of one tuple: even the top group-by estimate won't fit.
        let mut mgr = CacheManager::builder()
            .strategy(Strategy::Vcm)
            .policy(PolicyKind::TwoLevel)
            .cache_bytes(1)
            .build(backend)
            .unwrap();
        assert!(mgr.preload_best().unwrap().is_none());
    }
}
