//! Property-based tests of [`RetryPolicy`] backoff schedules: for every
//! valid policy the schedule is monotone non-decreasing, bounded by the
//! virtual-time budget, never longer than the retry count, and exactly
//! reproducible from the seed.

use aggcache::prelude::*;
use proptest::prelude::*;
// Our `Strategy` enum (from the prelude glob) shadows proptest's trait of
// the same name; re-import the trait under an alias.
use proptest::strategy::Strategy as PropStrategy;

/// Strategy: an arbitrary *valid* retry policy over wide field ranges.
fn arb_policy() -> impl PropStrategy<Value = RetryPolicy> {
    (
        (1u32..=50, 0.1f64..1_000.0, 1.0f64..4.0),
        (
            1.0f64..10_000.0,
            0.0f64..0.99,
            1.0f64..100_000.0,
            0u64..u64::MAX,
        ),
    )
        .prop_map(
            |((max_attempts, base, mult), (max_backoff, jitter, budget, seed))| RetryPolicy {
                max_attempts,
                base_backoff_ms: base,
                backoff_multiplier: mult,
                // Keep the cap at or above the base so the policy is valid.
                max_backoff_ms: base.max(max_backoff),
                jitter,
                budget_ms: budget,
                seed,
            },
        )
}

proptest! {
    #[test]
    fn schedule_is_monotone_non_decreasing(policy in arb_policy()) {
        prop_assert!(policy.validate().is_ok());
        let schedule = policy.backoff_schedule();
        prop_assert!(
            schedule.windows(2).all(|w| w[0] <= w[1]),
            "schedule not monotone: {schedule:?}"
        );
        prop_assert!(
            schedule.iter().all(|b| b.is_finite() && *b > 0.0),
            "backoffs must be positive and finite: {schedule:?}"
        );
    }

    #[test]
    fn schedule_is_bounded_by_budget(policy in arb_policy()) {
        let schedule = policy.backoff_schedule();
        let total: f64 = schedule.iter().sum();
        prop_assert!(
            total <= policy.budget_ms,
            "schedule sum {total} exceeds budget {}",
            policy.budget_ms
        );
        prop_assert!(
            (schedule.len() as u32) < policy.max_attempts,
            "{} backoffs for {} attempts",
            schedule.len(),
            policy.max_attempts
        );
    }

    #[test]
    fn schedule_is_reproducible_per_seed(policy in arb_policy()) {
        // Bit-exact across calls: the jitter stream is a pure function of
        // (seed, attempt index).
        let a = policy.backoff_schedule();
        let b = policy.backoff_schedule();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        // And agrees step-by-step with the per-attempt accessor.
        for (i, backoff) in a.iter().enumerate() {
            let attempt = i as u32 + 1;
            prop_assert_eq!(
                policy.backoff_ms(attempt).map(f64::to_bits),
                Some(backoff.to_bits()),
                "backoff_ms({}) disagrees with the schedule", attempt
            );
        }
    }

    #[test]
    fn jitter_widens_but_never_reorders(policy in arb_policy()) {
        // The jitter-free twin is a lower bound on every step: jitter only
        // ever lengthens a backoff (u >= 0), it never shortens one.
        let dry = RetryPolicy { jitter: 0.0, ..policy };
        let jittered = policy.backoff_schedule();
        let flat = dry.backoff_schedule();
        for (i, (j, f)) in jittered.iter().zip(&flat).enumerate() {
            prop_assert!(
                j >= f,
                "jittered step {i} ({j}) below jitter-free step ({f})"
            );
        }
    }
}
