//! Property-based tests of the core invariants, on randomly generated
//! schemas, chunkings and cache states.

use aggcache::core::{esm, vcm, vcmc, LookupStats};
use aggcache::prelude::*;
use aggcache::store::{aggregate_to_level, Aggregator};
use proptest::prelude::*;
// Our `Strategy` enum (from the prelude glob) shadows proptest's trait of
// the same name; re-import the trait under an alias.
use proptest::strategy::Strategy as PropStrategy;
use std::collections::HashMap;
use std::sync::Arc;

/// Strategy: a random small schema + aligned chunking (1-3 dims, hierarchy
/// sizes 1-3, modest cardinalities) as a built grid.
fn arb_grid() -> impl PropStrategy<Value = Arc<ChunkGrid>> {
    let dim = (1u8..=3)
        .prop_flat_map(|h| {
            // Cardinalities grow with level; chunk counts are feasible.
            proptest::collection::vec(1u32..=3, h as usize).prop_map(move |fanouts| {
                let mut cards = vec![1u32];
                for f in fanouts {
                    let last = *cards.last().unwrap();
                    cards.push(last * f + 1);
                }
                cards
            })
        })
        .prop_map(|cards| {
            let chunks: Vec<u32> = cards
                .iter()
                .enumerate()
                .map(|(l, &c)| c.min(1 + l as u32).min(c))
                .collect();
            (cards, chunks)
        });
    proptest::collection::vec(dim, 1..=3).prop_map(|dims| {
        let mut spec = SyntheticSpec::new();
        for (i, (cards, mut chunks)) in dims.into_iter().enumerate() {
            // Chunk counts must be non-decreasing with level.
            for l in 1..chunks.len() {
                chunks[l] = chunks[l].max(chunks[l - 1]);
            }
            spec = spec.dim(format!("d{i}"), cards, chunks);
        }
        spec.build_grid()
    })
}

/// All chunk keys of a grid.
fn all_keys(grid: &ChunkGrid) -> Vec<ChunkKey> {
    grid.schema()
        .lattice()
        .iter_ids()
        .flat_map(|gb| (0..grid.n_chunks(gb)).map(move |c| ChunkKey::new(gb, c)))
        .collect()
}

fn cached_cell(n_dims: usize, cells: usize) -> ChunkData {
    let mut d = ChunkData::new(n_dims);
    for i in 0..cells {
        d.push(&vec![i as u32; n_dims], 1.0);
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1 (paper §4): after ANY sequence of inserts and evictions,
    /// `count > 0` iff ESM finds the chunk computable — for EVERY chunk.
    #[test]
    fn vcm_count_equals_esm_computability(
        grid in arb_grid(),
        ops in proptest::collection::vec((proptest::bool::ANY, 0usize..500), 1..40),
    ) {
        let keys = all_keys(&grid);
        let mut cache = ChunkCache::new(usize::MAX >> 1, PolicyKind::Benefit);
        let mut counts = CountTable::new(grid.clone());
        for (insert, pick) in ops {
            let key = keys[pick % keys.len()];
            if insert && !cache.contains(&key) {
                cache.insert(key, cached_cell(grid.num_dims(), 2), Origin::Backend, 1.0);
                counts.on_insert(key);
            } else if !insert && cache.contains(&key) {
                cache.remove(&key);
                counts.on_evict(key);
            }
        }
        for &key in &keys {
            let mut stats = LookupStats::default();
            let esm_says = esm(&cache, &grid, key, &mut stats).is_some();
            prop_assert_eq!(
                counts.is_computable(key),
                esm_says,
                "Property 1 violated at {:?}", key
            );
        }
    }

    /// VCMC's maintained least cost equals the exhaustive oracle minimum,
    /// and vcmc plans only reference cached chunks with total size = cost.
    #[test]
    fn vcmc_cost_is_exact_minimum(
        grid in arb_grid(),
        ops in proptest::collection::vec((proptest::bool::ANY, 0usize..500, 1u32..6), 1..30),
    ) {
        let keys = all_keys(&grid);
        let mut cache = ChunkCache::new(usize::MAX >> 1, PolicyKind::Benefit);
        let mut costs = CostTable::new(grid.clone());
        let mut sizes: HashMap<ChunkKey, u32> = HashMap::new();
        for (insert, pick, size) in ops {
            let key = keys[pick % keys.len()];
            if insert && !cache.contains(&key) {
                cache.insert(key, cached_cell(grid.num_dims(), size as usize), Origin::Backend, 1.0);
                costs.on_insert(key, size);
                sizes.insert(key, size);
            } else if !insert && cache.contains(&key) {
                cache.remove(&key);
                costs.on_evict(key);
                sizes.remove(&key);
            }
        }
        let oracle = CostTable::oracle_costs(&grid, |k| sizes.get(&k).copied());
        for &key in &keys {
            let oracle_cost = oracle[key.gb.index()][key.chunk as usize];
            let table_cost = costs.cost(key);
            if oracle_cost == u32::MAX {
                prop_assert!(table_cost.is_none(), "{:?} should not be computable", key);
            } else {
                prop_assert_eq!(table_cost, Some(oracle_cost), "wrong cost at {:?}", key);
                // The plan must reach exactly that cost using cached leaves.
                let mut stats = LookupStats::default();
                let plan = vcmc(&costs, &cache, &grid, key, &mut stats).unwrap();
                prop_assert_eq!(plan.cost, u64::from(oracle_cost));
                let leaf_total: u64 = plan
                    .leaves
                    .iter()
                    .map(|l| u64::from(*sizes.get(l).expect("leaf must be cached")))
                    .sum();
                prop_assert_eq!(leaf_total, plan.cost);
            }
        }
    }

    /// ESM, VCM and VCMC always agree on computability, and their plans'
    /// leaves partition the target region (verified via the executor
    /// producing identical results).
    #[test]
    fn strategies_agree_and_plans_are_valid(
        grid in arb_grid(),
        ops in proptest::collection::vec(0usize..500, 1..25),
    ) {
        let keys = all_keys(&grid);
        let mut cache = ChunkCache::new(usize::MAX >> 1, PolicyKind::Benefit);
        let mut counts = CountTable::new(grid.clone());
        let mut costs = CostTable::new(grid.clone());
        for pick in ops {
            let key = keys[pick % keys.len()];
            if !cache.contains(&key) {
                cache.insert(key, cached_cell(grid.num_dims(), 1), Origin::Backend, 1.0);
                counts.on_insert(key);
                costs.on_insert(key, 1);
            }
        }
        for &key in &keys {
            let mut s = LookupStats::default();
            let e = esm(&cache, &grid, key, &mut s);
            let v = vcm(&counts, &cache, &grid, key, &mut s);
            let vc = vcmc(&costs, &cache, &grid, key, &mut s);
            prop_assert_eq!(e.is_some(), v.is_some());
            prop_assert_eq!(e.is_some(), vc.is_some());
            if let (Some(pe), Some(pv), Some(pvc)) = (e, v, vc) {
                for plan in [&pe, &pv, &pvc] {
                    for leaf in &plan.leaves {
                        prop_assert!(cache.contains(leaf));
                    }
                }
                // Optimal cost is a lower bound on any found path's cost.
                prop_assert!(pvc.cost <= pe.cost);
                prop_assert!(pvc.cost <= pv.cost);
            }
        }
    }

    /// Lemma 1 path-count formula matches dynamic programming on random
    /// hierarchy shapes.
    #[test]
    fn lemma1_holds_on_random_lattices(
        sizes in proptest::collection::vec(1u8..=4, 1..=4),
    ) {
        let lattice = Lattice::new(&sizes).unwrap();
        // DP over the lattice.
        let mut paths: Vec<u128> = vec![0; lattice.num_group_bys() as usize];
        let base = lattice.base();
        paths[base.index()] = 1;
        let mut ids: Vec<GroupById> = lattice.iter_ids().collect();
        ids.sort_by_key(|&id| {
            std::cmp::Reverse(lattice.level_of(id).iter().map(|&l| u32::from(l)).sum::<u32>())
        });
        for id in ids {
            if id != base {
                paths[id.index()] = lattice.parents(id).map(|(_, p)| paths[p.index()]).sum();
            }
            let level = lattice.level_of(id);
            prop_assert_eq!(lattice.num_paths_to_base(&level), Some(paths[id.index()]));
        }
    }

    /// Sharded parallel aggregation is bit-exact: splitting an aggregation
    /// across N target-cell-owning shards and merging the partials with
    /// [`Aggregator::merge`] yields the same `f64` bit patterns as the
    /// single-threaded [`aggregate_to_level`] kernel — for random chunk
    /// sets, every aggregate function and 1/2/3/8 shards.
    #[test]
    fn sharded_merge_matches_sequential_kernel(
        grid in arb_grid(),
        chunks in proptest::collection::vec(
            proptest::collection::vec((0u64..u64::MAX, -1.0e6f64..1.0e6), 1..16),
            1..5,
        ),
    ) {
        let schema = grid.schema();
        let n_dims = grid.num_dims();
        let base = schema.base_level();
        // Random cells with jagged values (sums of these are order-
        // sensitive in the last ulp, which is exactly what the ownership
        // sharding must preserve). Coordinates stay within each
        // dimension's base cardinality so roll-up tables apply.
        let datas: Vec<ChunkData> = chunks
            .iter()
            .map(|cells| {
                let mut d = ChunkData::new(n_dims);
                for &(raw, v) in cells {
                    let coords: Vec<u32> = (0..n_dims)
                        .map(|k| {
                            let card = schema.dimension(k).cardinality(base[k]);
                            ((raw >> (8 * k)) as u32) % card
                        })
                        .collect();
                    d.push(&coords, v);
                }
                d
            })
            .collect();
        let sources: Vec<(&[u8], &ChunkData)> =
            datas.iter().map(|d| (base.as_slice(), d)).collect();

        for gb in schema.lattice().iter_ids() {
            let target = schema.lattice().level_of(gb);
            for agg in [AggFn::Sum, AggFn::Count, AggFn::Min, AggFn::Max] {
                let expected = aggregate_to_level(schema, &sources, &target, agg, Lift::Lifted);
                for nshards in [1u32, 2, 3, 8] {
                    let mut shards: Vec<Aggregator> = (0..nshards)
                        .map(|t| Aggregator::new_sharded(schema, &target, agg, t, nshards))
                        .collect();
                    for shard in &mut shards {
                        for (level, data) in &sources {
                            shard.add_chunk(level, data, Lift::Lifted);
                        }
                    }
                    let mut it = shards.into_iter();
                    let mut merged = it.next().unwrap();
                    for partial in it {
                        merged.merge(partial);
                    }
                    let total_inputs: u64 = datas.iter().map(|d| d.len() as u64).sum();
                    prop_assert_eq!(
                        merged.cells_added(),
                        total_inputs,
                        "every input cell must be owned by exactly one shard"
                    );
                    let got = merged.finish();
                    prop_assert_eq!(got.len(), expected.len());
                    for i in 0..got.len() {
                        prop_assert_eq!(got.coords_of(i), expected.coords_of(i));
                        prop_assert_eq!(
                            got.value_of(i).to_bits(),
                            expected.value_of(i).to_bits(),
                            "{:?} nshards={} cell {}: {} vs {}",
                            agg, nshards, i, got.value_of(i), expected.value_of(i)
                        );
                    }
                }
            }
        }
    }

    /// The AVG dual-cube path stays bit-exact under sharding: a sharded
    /// SUM cube joined with a sharded COUNT cube gives the same averages,
    /// bit for bit, as the single-threaded SUM/COUNT join.
    #[test]
    fn sharded_avg_dual_cube_matches_sequential(
        grid in arb_grid(),
        cells in proptest::collection::vec((0u64..u64::MAX, -1.0e6f64..1.0e6), 1..40),
    ) {
        let schema = grid.schema();
        let n_dims = grid.num_dims();
        let base = schema.base_level();
        let mut data = ChunkData::new(n_dims);
        for &(raw, v) in &cells {
            let coords: Vec<u32> = (0..n_dims)
                .map(|k| {
                    let card = schema.dimension(k).cardinality(base[k]);
                    ((raw >> (8 * k)) as u32) % card
                })
                .collect();
            data.push(&coords, v);
        }
        let sources: Vec<(&[u8], &ChunkData)> = vec![(base.as_slice(), &data)];
        let top = schema.lattice().level_of(schema.lattice().top());

        let cube = |agg: AggFn, nshards: u32| -> ChunkData {
            let mut shards: Vec<Aggregator> = (0..nshards)
                .map(|t| Aggregator::new_sharded(schema, &top, agg, t, nshards))
                .collect();
            for shard in &mut shards {
                for (level, d) in &sources {
                    shard.add_chunk(level, d, Lift::Lifted);
                }
            }
            let mut it = shards.into_iter();
            let mut merged = it.next().unwrap();
            for partial in it {
                merged.merge(partial);
            }
            merged.finish()
        };
        let avg_of = |nshards: u32| -> Vec<u64> {
            let sums = cube(AggFn::Sum, nshards);
            let counts = cube(AggFn::Count, nshards);
            assert_eq!(sums.len(), counts.len());
            (0..sums.len())
                .map(|i| (sums.value_of(i) / counts.value_of(i)).to_bits())
                .collect()
        };

        let sequential = avg_of(1);
        for nshards in [2u32, 8] {
            prop_assert_eq!(&avg_of(nshards), &sequential, "nshards={}", nshards);
        }
    }

    /// Chunk geometry: linearize/delinearize round-trips and parent/child
    /// mappings stay mutually consistent on random grids.
    #[test]
    fn chunk_geometry_round_trips(grid in arb_grid()) {
        let lattice = grid.schema().lattice().clone();
        for gb in lattice.iter_ids() {
            let geom = grid.geom(gb);
            let mut coords = vec![0u32; grid.num_dims()];
            for chunk in 0..geom.total_chunks() {
                geom.delinearize(chunk, &mut coords);
                prop_assert_eq!(geom.linearize(&coords), chunk);
                for (dim, _) in lattice.parents(gb) {
                    let (pgb, parents) = grid.parent_chunks(gb, chunk, dim);
                    prop_assert!(!parents.is_empty());
                    for &p in &parents {
                        prop_assert_eq!(grid.child_chunk(pgb, p, dim), (gb, chunk));
                    }
                }
            }
        }
    }
}
