//! Algebraic aggregates over distributive cubes: AVG as SUM / COUNT.
//!
//! The cache machinery is only sound for *distributive* aggregates (partial
//! aggregates combine into coarser ones), which is why [`AggFn`] has no
//! `Avg`. The standard decomposition runs two cubes — one SUM, one COUNT —
//! through their own active caches and joins the results cell by cell.

use aggcache_chunks::ChunkData;
use aggcache_core::{
    CacheError, CacheManager, CacheManagerBuilder, ConfigError, ManagerConfig, Query, QueryMetrics,
    QueryRequest,
};
use aggcache_obs::Tracer;
use aggcache_store::{AggFn, Backend, BackendCostModel, FactTable};
use std::sync::Arc;

/// Per-query metrics of an AVG execution: one entry per underlying cube.
#[derive(Debug, Clone, Copy)]
pub struct AvgMetrics {
    /// Metrics of the SUM cube's query.
    pub sum: QueryMetrics,
    /// Metrics of the COUNT cube's query.
    pub count: QueryMetrics,
}

impl AvgMetrics {
    /// Combined end-to-end virtual milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.sum.total_ms() + self.count.total_ms()
    }

    /// Whether both halves were answered entirely from their caches.
    pub fn complete_hit(&self) -> bool {
        self.sum.complete_hit && self.count.complete_hit
    }
}

/// An AVG cube implemented as two aggregate-aware caches (SUM and COUNT)
/// over the same fact table.
///
/// ```
/// use aggcache::avg::AvgCache;
/// use aggcache::prelude::*;
///
/// let dataset = SyntheticSpec::new()
///     .dim("a", vec![1, 2, 6], vec![1, 2, 3])
///     .dim("b", vec![1, 4], vec![1, 2])
///     .tuples(200)
///     .build();
/// let config = CacheManagerBuilder::new()
///     .strategy(Strategy::Vcmc)
///     .policy(PolicyKind::TwoLevel)
///     .cache_bytes(1 << 20)
///     .config()
///     .unwrap();
/// let mut avg = AvgCache::new(dataset.fact, BackendCostModel::default(), config).unwrap();
/// let grid = avg.grid().clone();
/// let top = grid.schema().lattice().top();
/// let (cells, _) = avg.execute(&Query::full_group_by(&grid, top)).unwrap();
/// assert_eq!(cells.len(), 1);
/// assert!(cells.value_of(0) >= 1.0 && cells.value_of(0) <= 1000.0);
/// ```
pub struct AvgCache {
    sum: CacheManager,
    count: CacheManager,
}

impl AvgCache {
    /// Builds the two caches over (clones of) `fact`, validating `config`.
    /// Each cache gets the full configured budget; halve
    /// `config.cache_bytes` to model a shared budget.
    pub fn new(
        fact: FactTable,
        cost: BackendCostModel,
        config: ManagerConfig,
    ) -> Result<Self, ConfigError> {
        let sum_backend = Backend::new(fact.clone(), AggFn::Sum, cost);
        let count_backend = Backend::new(fact, AggFn::Count, cost);
        Ok(Self {
            sum: CacheManagerBuilder::from_config(config).build(sum_backend)?,
            count: CacheManagerBuilder::from_config(config).build(count_backend)?,
        })
    }

    /// Attaches a tracer to both underlying caches (SUM and COUNT events
    /// interleave in the same sink).
    pub fn set_tracer(&mut self, tracer: Option<Arc<dyn Tracer>>) {
        self.sum.set_tracer(tracer.clone());
        self.count.set_tracer(tracer);
    }

    /// The grid (shared by both cubes).
    pub fn grid(&self) -> &std::sync::Arc<aggcache_chunks::ChunkGrid> {
        self.sum.grid()
    }

    /// The underlying SUM cache.
    pub fn sum_manager(&self) -> &CacheManager {
        &self.sum
    }

    /// The underlying COUNT cache.
    pub fn count_manager(&self) -> &CacheManager {
        &self.count
    }

    /// Pre-loads both cubes per the two-level policy.
    pub fn preload_best(&mut self) -> Result<(), CacheError> {
        self.sum.preload_best()?;
        self.count.preload_best()?;
        Ok(())
    }

    /// Executes a query on both cubes and joins the cells into averages.
    /// Fails with [`CacheError::CellMisalignment`] if the two cubes return
    /// different cell sets (which would make the averages silently wrong).
    pub fn execute(&mut self, query: &Query) -> Result<(ChunkData, AvgMetrics), CacheError> {
        let sums = self.sum.run(&query.into())?.into_result();
        let counts = self.count.run(&query.into())?.into_result();
        Self::join(sums, counts)
    }

    /// Executes a batch of queries on both cubes via
    /// [`CacheManager::run_batch`] — each cube probes its queries
    /// concurrently and shards large aggregations across
    /// [`ManagerConfig::threads`] — and joins each query's cells into
    /// averages. Results are identical to calling [`AvgCache::execute`] in
    /// a loop; the SUM+COUNT decomposition is preserved because both cubes
    /// stay independently bit-exact.
    pub fn execute_batch(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<(ChunkData, AvgMetrics)>, CacheError> {
        let requests = QueryRequest::batch(queries);
        let sums = self.sum.run_batch(&requests)?;
        let counts = self.count.run_batch(&requests)?;
        sums.into_iter()
            .zip(counts)
            .map(|(s, c)| Self::join(s.into_result(), c.into_result()))
            .collect()
    }

    /// Joins the SUM and COUNT halves cell by cell. The two cubes run the
    /// same query over the same fact table, so their non-empty cell sets
    /// must be identical; any divergence means averages would be silently
    /// wrong, and is reported as [`CacheError::CellMisalignment`] rather
    /// than being a debug-only assertion.
    fn join(
        mut sums: aggcache_core::QueryResult,
        mut counts: aggcache_core::QueryResult,
    ) -> Result<(ChunkData, AvgMetrics), CacheError> {
        sums.data.sort_by_coords();
        counts.data.sort_by_coords();
        if sums.data.len() != counts.data.len() {
            return Err(CacheError::CellMisalignment {
                left_cells: sums.data.len(),
                right_cells: counts.data.len(),
                diverges_at: None,
            });
        }
        let mut out = ChunkData::with_capacity(sums.data.n_dims(), sums.data.len());
        for (i, ((cs, s), (cc, c))) in sums.data.iter().zip(counts.data.iter()).enumerate() {
            if cs != cc {
                return Err(CacheError::CellMisalignment {
                    left_cells: sums.data.len(),
                    right_cells: counts.data.len(),
                    diverges_at: Some(i),
                });
            }
            out.push(cs, if c > 0.0 { s / c } else { f64::NAN });
        }
        Ok((
            out,
            AvgMetrics {
                sum: sums.metrics,
                count: counts.metrics,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn dataset() -> Dataset {
        SyntheticSpec::new()
            .dim("a", vec![1, 3, 9], vec![1, 3, 3])
            .dim("b", vec![1, 6], vec![1, 3])
            .tuples(300)
            .seed(21)
            .build()
    }

    fn test_config() -> ManagerConfig {
        CacheManagerBuilder::new()
            .strategy(Strategy::Vcmc)
            .policy(PolicyKind::TwoLevel)
            .cache_bytes(1 << 22)
            .config()
            .unwrap()
    }

    #[test]
    fn avg_equals_sum_over_count() {
        let ds = dataset();
        let grid = ds.grid.clone();
        let sum_backend = Backend::new(ds.fact.clone(), AggFn::Sum, BackendCostModel::default());
        let count_backend =
            Backend::new(ds.fact.clone(), AggFn::Count, BackendCostModel::default());
        let mut avg = AvgCache::new(ds.fact, BackendCostModel::default(), test_config()).unwrap();
        for gb in grid.schema().lattice().iter_ids() {
            let q = Query::full_group_by(&grid, gb);
            let (cells, _) = avg.execute(&q).unwrap();
            // Oracle: fetch sums and counts straight from backends.
            let mut s = ChunkData::new(grid.num_dims());
            let mut c = ChunkData::new(grid.num_dims());
            for (_, d) in sum_backend.fetch(gb, &q.chunks).unwrap().chunks {
                s.append(&d);
            }
            for (_, d) in count_backend.fetch(gb, &q.chunks).unwrap().chunks {
                c.append(&d);
            }
            s.sort_by_coords();
            c.sort_by_coords();
            assert_eq!(cells.len(), s.len());
            for (i, (coords, v)) in cells.iter().enumerate() {
                assert_eq!(coords, s.coords_of(i));
                let expected = s.value_of(i) / c.value_of(i);
                assert!((v - expected).abs() < 1e-9, "cell {coords:?}");
            }
        }
    }

    #[test]
    fn join_rejects_misaligned_cell_sets() {
        use aggcache_core::{QueryMetrics, QueryResult};
        let result = |cells: &[(&[u32], f64)]| {
            let mut d = ChunkData::new(2);
            for (c, v) in cells {
                d.push(c, *v);
            }
            QueryResult {
                data: d,
                metrics: QueryMetrics::default(),
            }
        };
        // Different cell counts.
        let err = AvgCache::join(
            result(&[(&[0, 0], 6.0), (&[0, 1], 4.0)]),
            result(&[(&[0, 0], 2.0)]),
        )
        .unwrap_err();
        assert_eq!(
            err,
            CacheError::CellMisalignment {
                left_cells: 2,
                right_cells: 1,
                diverges_at: None
            }
        );
        // Same count, diverging coordinates.
        let err = AvgCache::join(
            result(&[(&[0, 0], 6.0), (&[0, 1], 4.0)]),
            result(&[(&[0, 0], 2.0), (&[1, 0], 2.0)]),
        )
        .unwrap_err();
        assert_eq!(
            err,
            CacheError::CellMisalignment {
                left_cells: 2,
                right_cells: 2,
                diverges_at: Some(1)
            }
        );
        // Aligned sets join into averages.
        let (cells, _) = AvgCache::join(
            result(&[(&[0, 0], 6.0), (&[0, 1], 4.0)]),
            result(&[(&[0, 0], 2.0), (&[0, 1], 0.0)]),
        )
        .unwrap();
        assert_eq!(cells.value_of(0), 3.0);
        assert!(cells.value_of(1).is_nan(), "zero count yields NaN");
    }

    #[test]
    fn avg_rollups_hit_the_caches() {
        let ds = dataset();
        let grid = ds.grid.clone();
        let mut avg = AvgCache::new(ds.fact, BackendCostModel::default(), test_config()).unwrap();
        let base = grid.schema().lattice().base();
        let top = grid.schema().lattice().top();
        avg.execute(&Query::full_group_by(&grid, base)).unwrap();
        let (_, m) = avg.execute(&Query::full_group_by(&grid, top)).unwrap();
        assert!(m.complete_hit(), "both cubes answer the roll-up from cache");
        assert!(m.total_ms() < 10.0);
    }
}
