//! # aggcache — Aggregate Aware Caching for Multi-Dimensional Queries
//!
//! A Rust implementation of Deshpande & Naughton's EDBT 2000 paper:
//! a chunk-based OLAP middle-tier cache that answers queries not only from
//! chunks it holds, but by **aggregating cached chunks** across the
//! group-by lattice — with the paper's four lookup algorithms (ESM, ESMC,
//! VCM, VCMC), virtual-count and cost-table maintenance, and the two-level
//! replacement policy.
//!
//! ## Quick start
//!
//! ```
//! use aggcache::prelude::*;
//!
//! // A small synthetic cube: 2 dimensions, data at the lattice base.
//! let dataset = SyntheticSpec::new()
//!     .dim("product", vec![1, 3, 12], vec![1, 3, 6])
//!     .dim("store", vec![1, 8], vec![1, 4])
//!     .tuples(500)
//!     .build();
//!
//! let backend = Backend::new(dataset.fact, AggFn::Sum, BackendCostModel::default());
//! let mut manager = CacheManager::builder()
//!     .strategy(Strategy::Vcmc)
//!     .policy(PolicyKind::TwoLevel)
//!     .cache_bytes(64 * 1024)
//!     .build(backend)
//!     .unwrap();
//!
//! // First query: chunks come from the backend and are cached.
//! let grid = manager.grid().clone();
//! let base = grid.schema().lattice().base();
//! let q = QueryRequest::new(Query::full_group_by(&grid, base));
//! let r1 = manager.run(&q).unwrap();
//! assert!(!r1.metrics.complete_hit);
//!
//! // A roll-up query: never fetched, but computable from the cache.
//! let top = grid.schema().lattice().top();
//! let r2 = manager
//!     .run(&Query::full_group_by(&grid, top).into())
//!     .unwrap();
//! assert!(r2.metrics.complete_hit);
//! assert_eq!(r2.metrics.chunks_computed, 1);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`schema`] | dimensions, hierarchies, the group-by lattice |
//! | [`chunks`] | chunk geometry, closure property, chunk data |
//! | [`store`] | fact table, aggregation kernel, simulated backend |
//! | [`gen`] | APB-1-like and synthetic schema/data generation |
//! | [`cache`] | byte-budgeted chunk cache, benefit & two-level policies |
//! | [`core`] | ESM/ESMC/VCM/VCMC lookup, count/cost tables, manager |
//! | [`workload`] | drill-down/roll-up/proximity/random query streams |
//! | [`obs`] | trace events, tracer trait, metrics registry, exporters |
//! | [`cluster`] | sharded multi-node tier: hash ring, cooperative lookup |

#![warn(missing_docs)]

pub mod avg;

pub use aggcache_cache as cache;
pub use aggcache_chunks as chunks;
pub use aggcache_cluster as cluster;
pub use aggcache_core as core;
pub use aggcache_gen as gen;
pub use aggcache_obs as obs;
pub use aggcache_schema as schema;
pub use aggcache_store as store;
pub use aggcache_workload as workload;

/// One-stop imports for applications.
pub mod prelude {
    pub use aggcache_cache::{
        AdmissionKind, CachedChunk, ChunkCache, CountMinSketch, Origin, PolicyKind,
    };
    pub use aggcache_chunks::{ChunkData, ChunkGrid, ChunkKey, ChunkNumber, PAPER_TUPLE_BYTES};
    pub use aggcache_cluster::{ClusterBuilder, ClusterError, ClusterManager, HashRing, NodeStats};
    pub use aggcache_core::{
        CacheError, CacheManager, CacheManagerBuilder, CheckpointReport, ComputationPlan,
        ConfigError, Consistency, CostTable, CountTable, ExecOutcome, LookupOutcome, LookupStats,
        ManagerConfig, PreloadReport, Query, QueryMetrics, QueryProbe, QueryRequest, QueryResult,
        RemoteMetrics, Routing, SessionMetrics, SpillMetrics, Strategy, TableKind, UpdateMetrics,
        ValueQuery, WarmStartReport,
    };
    pub use aggcache_gen::{apb1_schema, Apb1Config, Dataset, SyntheticSpec};
    pub use aggcache_obs::{
        Event, MetricsRegistry, RecordingTracer, TenantStats, TenantsView, Tracer,
    };
    pub use aggcache_schema::{Dimension, GroupById, Lattice, Level, Schema};
    pub use aggcache_store::{
        decode_record, encode_record, spill_checksum, AggFn, Backend, BackendCostModel,
        BackendSource, DeltaBatch, DeltaOp, DeltaRecord, DiskFaultProfile, EffectiveDelta,
        FactTable, FaultInjectingBackend, FaultInjectingSpillIo, FaultProfile, FsSpillIo,
        IndexRebuildReport, Lift, MessageCostModel, RetryPolicy, RetryingBackend, ScrubReport,
        SpillCheckpointStats, SpillConfig, SpillCostModel, SpillError, SpillIo, SpillRecord,
        SpillStore,
    };
    pub use aggcache_workload::{
        Arrival, MultiTenantConfig, QueryKind, QueryMix, QueryStream, TenantProfile, TrafficEngine,
        WorkloadConfig, WorkloadError,
    };
}
